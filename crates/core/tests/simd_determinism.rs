//! SIMD-level training determinism (the PR 2 thread contract extended to
//! instruction sets): a full training run must be **bit-identical** — the
//! per-epoch loss curve and every final parameter — whether the kernels run
//! through the scalar or the AVX2 path, crossed with every thread-pool
//! size. Vector width must never change numerics, only how fast the same
//! bits are produced.
//!
//! On machines without AVX2 the `Level::Avx2Fma` leg silently degrades to
//! scalar (the override can only lower the detected level), so this test
//! still runs everywhere.

use muse_parallel::with_threads;
use muse_tensor::simd::{self, Level};
use muse_tensor::Tensor;
use muse_traffic::flow::FlowSeries;
use muse_traffic::grid::GridMap;
use muse_traffic::subseries::SubSeriesSpec;
use musenet::{MuseNet, MuseNetConfig, Trainer, TrainerOptions};

/// A smooth daily pattern so training has structure to fit.
fn patterned_flows(grid: GridMap, days: usize, f: usize) -> FlowSeries {
    let t = days * f;
    let mut data = Vec::with_capacity(t * 2 * grid.cells());
    for i in 0..t {
        let hour = (i % f) as f32 / f as f32;
        let level = (2.0 * std::f32::consts::PI * hour).sin() * 0.6;
        for ch in 0..2 {
            for cell in 0..grid.cells() {
                let phase = 0.1 * (cell as f32) + 0.05 * ch as f32;
                data.push((level + phase).tanh());
            }
        }
    }
    FlowSeries::from_tensor(grid, Tensor::from_vec(data, &[t, 2, grid.height, grid.width]))
}

/// One full (tiny) training run; returns the per-epoch loss bits and the
/// final parameter bits.
fn train_once() -> (Vec<u32>, Vec<Vec<u32>>) {
    let grid = GridMap::new(3, 3);
    let spec = SubSeriesSpec { lc: 2, lp: 2, lt: 1, intervals_per_day: 6, trend_days: 7 };
    let mut cfg = MuseNetConfig::cpu_profile(grid, spec);
    cfg.d = 4;
    cfg.k = 8;
    let flows = patterned_flows(grid, 10, 6);
    let first = spec.min_target();
    let train: Vec<usize> = (first..first + 12).collect();
    let val: Vec<usize> = (first + 12..first + 16).collect();

    let model = MuseNet::new(cfg.clone());
    let mut trainer = Trainer::new(
        model,
        TrainerOptions { epochs: 3, batch_size: 4, learning_rate: 3e-3, ..Default::default() },
    );
    let report = trainer.fit(&flows, &cfg.spec, &train, &val);
    let losses = report.epochs.iter().map(|e| e.train_loss.to_bits()).collect();
    let params = trainer
        .model()
        .params()
        .iter()
        .map(|p| p.value().as_slice().iter().map(|x| x.to_bits()).collect())
        .collect();
    (losses, params)
}

#[test]
fn training_is_bit_identical_across_simd_levels_and_threads() {
    // Reference: scalar kernels, single thread.
    let (ref_losses, ref_params) = simd::with_level(Level::Scalar, || with_threads(1, train_once));
    assert_eq!(ref_losses.len(), 3);
    for level in [Level::Scalar, Level::Avx2Fma] {
        for threads in [1usize, 2, 4, 7] {
            let (losses, params) = simd::with_level(level, || with_threads(threads, train_once));
            let cfg = format!("{threads} threads / {}", level.name());
            assert_eq!(losses, ref_losses, "loss curve diverged at {cfg}");
            assert_eq!(params.len(), ref_params.len());
            for (i, (got, want)) in params.iter().zip(&ref_params).enumerate() {
                assert_eq!(got, want, "param {i} diverged at {cfg}");
            }
        }
    }
}
