//! The four ablation variants of §V-D (Table VI).

/// Which parts of MUSE-Net to build/train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AblationVariant {
    /// The full model.
    Full,
    /// `MUSE-Net-w/o-Spatial`: drop the ResPlus spatial module; the
    /// prediction head becomes a per-cell 1×1 convolution (no spatial
    /// mixing).
    WithoutSpatial,
    /// `MUSE-Net-w/o-MultiDisentangle`: replace the single interactive
    /// representation `Z^S` with three pairwise cross-variate
    /// representations `Z^{CP}, Z^{CT}, Z^{PT}` (bivariate disentanglement à
    /// la IIAE), with no semantic-pulling term.
    WithoutMultiDisentangle,
    /// `MUSE-Net-w/o-SemanticPushing`: drop the semantic-pushing
    /// regularizer (Eq. 9): the merged objective loses the `λ`-weighted
    /// share of the KL and reconstruction terms (their coefficients fall
    /// from `1+λ` to `1`).
    WithoutSemanticPushing,
    /// `MUSE-Net-w/o-SemanticPulling`: drop the semantic-pulling
    /// regularizer (Eq. 16): no simplex/duplex variational encoders are
    /// trained.
    WithoutSemanticPulling,
}

impl AblationVariant {
    /// All variants in the order of Table VI's columns.
    pub fn all() -> [AblationVariant; 5] {
        [
            AblationVariant::WithoutSpatial,
            AblationVariant::WithoutMultiDisentangle,
            AblationVariant::WithoutSemanticPushing,
            AblationVariant::WithoutSemanticPulling,
            AblationVariant::Full,
        ]
    }

    /// Display name matching the paper's column headers.
    pub fn name(&self) -> &'static str {
        match self {
            AblationVariant::Full => "MUSE-Net",
            AblationVariant::WithoutSpatial => "MUSE-Net-w/o-Spatial",
            AblationVariant::WithoutMultiDisentangle => "MUSE-Net-w/o-MultiDisentangle",
            AblationVariant::WithoutSemanticPushing => "MUSE-Net-w/o-SemanticPushing",
            AblationVariant::WithoutSemanticPulling => "MUSE-Net-w/o-SemanticPulling",
        }
    }

    /// Inverse of [`AblationVariant::name`]: parse a paper column header
    /// back into a variant (used when reconstructing a model from
    /// checkpoint metadata).
    pub fn from_name(name: &str) -> Option<AblationVariant> {
        AblationVariant::all().into_iter().find(|v| v.name() == name)
    }

    /// Whether this variant trains the simplex/duplex variational encoders.
    pub fn uses_pulling(&self) -> bool {
        matches!(
            self,
            AblationVariant::Full | AblationVariant::WithoutSpatial | AblationVariant::WithoutSemanticPushing
        )
    }

    /// Whether the single multivariate interactive representation is used
    /// (vs. three pairwise ones).
    pub fn uses_multivariate_interactive(&self) -> bool {
        !matches!(self, AblationVariant::WithoutMultiDisentangle)
    }

    /// Whether the ResPlus spatial module is used.
    pub fn uses_spatial(&self) -> bool {
        !matches!(self, AblationVariant::WithoutSpatial)
    }

    /// Whether the `λ`-weighted pushing share applies (coefficient `1+λ` on
    /// KL and reconstruction terms).
    pub fn uses_pushing(&self) -> bool {
        !matches!(self, AblationVariant::WithoutSemanticPushing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_model_uses_everything() {
        let v = AblationVariant::Full;
        assert!(
            v.uses_pulling() && v.uses_multivariate_interactive() && v.uses_spatial() && v.uses_pushing()
        );
        assert_eq!(v.name(), "MUSE-Net");
    }

    #[test]
    fn each_ablation_disables_exactly_its_module() {
        assert!(!AblationVariant::WithoutSpatial.uses_spatial());
        assert!(AblationVariant::WithoutSpatial.uses_pulling());

        assert!(!AblationVariant::WithoutMultiDisentangle.uses_multivariate_interactive());
        assert!(!AblationVariant::WithoutMultiDisentangle.uses_pulling());

        assert!(!AblationVariant::WithoutSemanticPushing.uses_pushing());
        assert!(AblationVariant::WithoutSemanticPushing.uses_pulling());

        assert!(!AblationVariant::WithoutSemanticPulling.uses_pulling());
        assert!(AblationVariant::WithoutSemanticPulling.uses_pushing());
    }

    #[test]
    fn name_round_trips_through_from_name() {
        for v in AblationVariant::all() {
            assert_eq!(AblationVariant::from_name(v.name()), Some(v));
        }
        assert_eq!(AblationVariant::from_name("MUSE-Net-w/o-Gravity"), None);
    }

    #[test]
    fn all_lists_five_columns() {
        let names: Vec<&str> = AblationVariant::all().iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), 5);
        assert!(names.contains(&"MUSE-Net-w/o-SemanticPulling"));
    }
}
