//! MUSE-Net hyper-parameters.

use crate::ablation::AblationVariant;
use muse_obs::Json;
use muse_traffic::{GridMap, SubSeriesSpec};

/// Hyper-parameters of MUSE-Net.
///
/// Paper settings (§IV-E, §V-B): `Lc,Lp,Lt = 3,4,4`, representation
/// dimension `d = 64`, sampled distribution dimension `k = 128` (exclusive
/// distributions use `k/4`), `λ = 1`, Adam at learning rate `2e-4`, batch 8.
/// The constructor defaults reproduce those; tests and the CPU-profile
/// harness shrink `d`/`k`.
#[derive(Debug, Clone)]
pub struct MuseNetConfig {
    /// City grid the model predicts over.
    pub grid: GridMap,
    /// Multi-periodic interception spec (lengths + sampling frequency).
    pub spec: SubSeriesSpec,
    /// Representation dimension `d`: channels of the exclusive/interactive
    /// feature maps.
    pub d: usize,
    /// Sampled distribution dimension `k`: the interactive posterior has `k`
    /// dims; each exclusive posterior uses `k/4` (§IV-E).
    pub k: usize,
    /// Trade-off `λ` between exclusive and interactive information (Eq. 17).
    pub lambda: f32,
    /// Number of ResPlus residual blocks in the spatial module.
    pub resplus_blocks: usize,
    /// Channels routed through each block's long-range "plus" unit.
    pub plus_channels: usize,
    /// Stabilizing cap on the maximized `KL[r(z^s|c,p,t) ‖ d(z^s|i,j)]`
    /// semantic-pulling term. The theoretical objective maximizes this KL
    /// (a conditional-MI lower bound, Eq. 23); the bound is finite in theory
    /// (≤ the data's interaction information) but unbounded for an
    /// unconstrained network, so we saturate it — documented in DESIGN.md.
    pub pull_cap: f32,
    /// Which ablation variant to build ([`AblationVariant::Full`] = paper model).
    pub variant: AblationVariant,
    /// Weight-init / reparameterization seed.
    pub seed: u64,
}

impl MuseNetConfig {
    /// Paper-default hyper-parameters for a grid and interception spec.
    pub fn paper(grid: GridMap, spec: SubSeriesSpec) -> Self {
        MuseNetConfig {
            grid,
            spec,
            d: 64,
            k: 128,
            lambda: 1.0,
            resplus_blocks: 2,
            plus_channels: 2,
            pull_cap: 5.0,
            variant: AblationVariant::Full,
            seed: 0,
        }
    }

    /// A small configuration that trains in seconds on one CPU core —
    /// used by tests and the default harness profile.
    pub fn cpu_profile(grid: GridMap, spec: SubSeriesSpec) -> Self {
        MuseNetConfig { d: 16, k: 32, resplus_blocks: 1, ..Self::paper(grid, spec) }
    }

    /// Exclusive posterior dimension `k/4` (floored, min 1).
    pub fn exclusive_dim(&self) -> usize {
        (self.k / 4).max(1)
    }

    /// Interactive posterior dimension `k`.
    pub fn interactive_dim(&self) -> usize {
        self.k
    }

    /// Input channels of the closeness branch (`2·Lc`).
    pub fn closeness_channels(&self) -> usize {
        2 * self.spec.lc
    }

    /// Input channels of the period branch (`2·Lp`).
    pub fn period_channels(&self) -> usize {
        2 * self.spec.lp
    }

    /// Input channels of the trend branch (`2·Lt`).
    pub fn trend_channels(&self) -> usize {
        2 * self.spec.lt
    }

    /// Number of grid cells `M = H·W`.
    pub fn cells(&self) -> usize {
        self.grid.cells()
    }

    /// Serialize the full configuration as JSON — the metadata payload a
    /// v2 checkpoint embeds so a serving process can rebuild this exact
    /// architecture (see [`crate::MuseNet::from_checkpoint`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("arch", Json::Str("muse-net".into())),
            (
                "grid",
                Json::obj([
                    ("height", Json::Num(self.grid.height as f64)),
                    ("width", Json::Num(self.grid.width as f64)),
                ]),
            ),
            (
                "spec",
                Json::obj([
                    ("lc", Json::Num(self.spec.lc as f64)),
                    ("lp", Json::Num(self.spec.lp as f64)),
                    ("lt", Json::Num(self.spec.lt as f64)),
                    ("intervals_per_day", Json::Num(self.spec.intervals_per_day as f64)),
                    ("trend_days", Json::Num(self.spec.trend_days as f64)),
                ]),
            ),
            ("d", Json::Num(self.d as f64)),
            ("k", Json::Num(self.k as f64)),
            ("lambda", Json::Num(self.lambda as f64)),
            ("resplus_blocks", Json::Num(self.resplus_blocks as f64)),
            ("plus_channels", Json::Num(self.plus_channels as f64)),
            ("pull_cap", Json::Num(self.pull_cap as f64)),
            ("variant", Json::Str(self.variant.name().into())),
            // Seeds in this repo are small; f64 is exact below 2^53.
            ("seed", Json::Num(self.seed as f64)),
        ])
    }

    /// Inverse of [`MuseNetConfig::to_json`]. Returns a descriptive error
    /// naming the first missing or ill-typed field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        fn usize_field(json: &Json, ctx: &str, key: &str) -> Result<usize, String> {
            json.get(key)
                .and_then(|v| v.as_f64())
                .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                .map(|v| v as usize)
                .ok_or_else(|| format!("config {ctx}field '{key}' missing or not a non-negative integer"))
        }
        fn f32_field(json: &Json, key: &str) -> Result<f32, String> {
            json.get(key)
                .and_then(|v| v.as_f64())
                .map(|v| v as f32)
                .ok_or_else(|| format!("config field '{key}' missing or not a number"))
        }
        if let Some(arch) = json.get("arch").and_then(|v| v.as_str()) {
            if arch != "muse-net" {
                return Err(format!("config is for arch '{arch}', expected 'muse-net'"));
            }
        }
        let grid = json.get("grid").ok_or("config field 'grid' missing")?;
        let spec = json.get("spec").ok_or("config field 'spec' missing")?;
        let variant_name = json
            .get("variant")
            .and_then(|v| v.as_str())
            .ok_or("config field 'variant' missing or not a string")?;
        let cfg = MuseNetConfig {
            grid: GridMap::new(usize_field(grid, "grid ", "height")?, usize_field(grid, "grid ", "width")?),
            spec: SubSeriesSpec {
                lc: usize_field(spec, "spec ", "lc")?,
                lp: usize_field(spec, "spec ", "lp")?,
                lt: usize_field(spec, "spec ", "lt")?,
                intervals_per_day: usize_field(spec, "spec ", "intervals_per_day")?,
                // Absent in checkpoints written before trend_days existed:
                // those were all weekly.
                trend_days: if spec.get("trend_days").is_some() {
                    usize_field(spec, "spec ", "trend_days")?
                } else {
                    7
                },
            },
            d: usize_field(json, "", "d")?,
            k: usize_field(json, "", "k")?,
            lambda: f32_field(json, "lambda")?,
            resplus_blocks: usize_field(json, "", "resplus_blocks")?,
            plus_channels: usize_field(json, "", "plus_channels")?,
            pull_cap: f32_field(json, "pull_cap")?,
            variant: AblationVariant::from_name(variant_name)
                .ok_or_else(|| format!("unknown ablation variant '{variant_name}'"))?,
            seed: usize_field(json, "", "seed")? as u64,
        };
        Ok(cfg)
    }

    /// Sanity-check the configuration; panics with a descriptive message on
    /// inconsistency.
    pub fn validate(&self) {
        assert!(self.d >= 1, "representation dim d must be >= 1");
        assert!(self.k >= 4, "sampled dim k must be >= 4 (uses k/4 for exclusives)");
        assert!(self.lambda >= 0.0, "lambda must be non-negative");
        assert!(
            self.spec.lc >= 1 && self.spec.lp >= 1 && self.spec.lt >= 1,
            "sub-series lengths must be >= 1"
        );
        assert!(self.spec.trend_days >= 1, "trend super-period must be >= 1 day");
        assert!(
            self.resplus_blocks >= 1 || matches!(self.variant, AblationVariant::WithoutSpatial),
            "need at least one ResPlus block unless spatial module is ablated"
        );
        assert!(self.plus_channels >= 1, "plus unit needs at least one channel");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SubSeriesSpec {
        SubSeriesSpec::paper_default(24)
    }

    #[test]
    fn paper_defaults_match_section_iv_e() {
        let cfg = MuseNetConfig::paper(GridMap::new(8, 10), spec());
        assert_eq!(cfg.d, 64);
        assert_eq!(cfg.k, 128);
        assert_eq!(cfg.exclusive_dim(), 32);
        assert_eq!(cfg.interactive_dim(), 128);
        assert!((cfg.lambda - 1.0).abs() < 1e-9);
        assert_eq!(cfg.spec.lc, 3);
        assert_eq!(cfg.closeness_channels(), 6);
        assert_eq!(cfg.period_channels(), 8);
        assert_eq!(cfg.trend_channels(), 8);
        cfg.validate();
    }

    #[test]
    fn cpu_profile_is_smaller() {
        let p = MuseNetConfig::paper(GridMap::new(6, 6), spec());
        let c = MuseNetConfig::cpu_profile(GridMap::new(6, 6), spec());
        assert!(c.d < p.d && c.k < p.k);
        c.validate();
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let mut cfg = MuseNetConfig::cpu_profile(GridMap::new(7, 9), spec());
        cfg.lambda = 0.5;
        cfg.pull_cap = 3.25;
        cfg.variant = crate::ablation::AblationVariant::WithoutSpatial;
        cfg.resplus_blocks = 0; // legal for w/o-Spatial
        cfg.seed = 12345;
        cfg.spec.trend_days = 3;
        let text = cfg.to_json().render();
        let back = MuseNetConfig::from_json(&muse_obs::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.grid, cfg.grid);
        assert_eq!(back.spec, cfg.spec);
        assert_eq!(
            (back.d, back.k, back.resplus_blocks, back.plus_channels),
            (cfg.d, cfg.k, 0, cfg.plus_channels)
        );
        assert_eq!(back.lambda, cfg.lambda);
        assert_eq!(back.pull_cap, cfg.pull_cap);
        assert_eq!(back.variant, cfg.variant);
        assert_eq!(back.seed, cfg.seed);
    }

    #[test]
    fn legacy_spec_without_trend_days_reads_as_weekly() {
        let mut json = MuseNetConfig::paper(GridMap::new(4, 4), spec()).to_json();
        if let muse_obs::Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "spec" {
                    if let muse_obs::Json::Obj(spec_fields) = v {
                        spec_fields.retain(|(k, _)| k != "trend_days");
                    }
                }
            }
        }
        let back = MuseNetConfig::from_json(&json).unwrap();
        assert_eq!(back.spec.trend_days, 7);
    }

    #[test]
    fn from_json_names_the_missing_field() {
        let mut json = MuseNetConfig::paper(GridMap::new(4, 4), spec()).to_json();
        if let muse_obs::Json::Obj(fields) = &mut json {
            fields.retain(|(k, _)| k != "k");
        }
        let err = MuseNetConfig::from_json(&json).unwrap_err();
        assert!(err.contains("'k'"), "{err}");
    }

    #[test]
    #[should_panic(expected = "k must be >= 4")]
    fn validate_rejects_tiny_k() {
        let mut cfg = MuseNetConfig::paper(GridMap::new(4, 4), spec());
        cfg.k = 2;
        cfg.validate();
    }
}
