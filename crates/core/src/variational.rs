//! Simplex and duplex variational encoders (Eq. 29).
//!
//! The semantic-pulling bound introduces auxiliary variational distributions
//! over the interactive latent:
//!
//! * simplex `g_τ^i(z^s | i)` — conditioned on **one** sub-series' features;
//! * duplex `d_ω^{i,j}(z^s | i, j)` — conditioned on a **pair**.
//!
//! Both are a convolutional layer followed by a distribution head, exactly
//! like the main encoders but over already-extracted branch features.

use crate::encoders::DistributionHead;
use muse_autograd::Var;
use muse_nn::{Conv2dLayer, ParamRef, Session};
use muse_tensor::init::SeededRng;
use muse_tensor::Conv2dSpec;

/// Identifies a sub-series branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Branch {
    /// Closeness (hourly) sub-series.
    Closeness,
    /// Period (daily) sub-series.
    Period,
    /// Trend (weekly) sub-series.
    Trend,
}

impl Branch {
    /// All branches in canonical order.
    pub fn all() -> [Branch; 3] {
        [Branch::Closeness, Branch::Period, Branch::Trend]
    }

    /// Canonical index (0, 1, 2).
    pub fn index(&self) -> usize {
        match self {
            Branch::Closeness => 0,
            Branch::Period => 1,
            Branch::Trend => 2,
        }
    }

    /// The three unordered branch pairs, in canonical order
    /// `(C,P), (C,T), (P,T)`.
    pub fn pairs() -> [(Branch, Branch); 3] {
        [
            (Branch::Closeness, Branch::Period),
            (Branch::Closeness, Branch::Trend),
            (Branch::Period, Branch::Trend),
        ]
    }

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Branch::Closeness => "C",
            Branch::Period => "P",
            Branch::Trend => "T",
        }
    }
}

/// A variational encoder over branch feature maps: conv → spatial pool →
/// head (the same pooled-representation convention as the main encoders).
#[derive(Debug)]
pub struct VariationalEncoder {
    conv: Conv2dLayer,
    head: DistributionHead,
}

impl VariationalEncoder {
    /// Simplex encoder (`n_inputs = 1`) or duplex encoder (`n_inputs = 2`)
    /// over `d`-channel branch features.
    pub fn new(rng: &mut SeededRng, n_inputs: usize, d: usize, _grid_cells: usize, dist_dim: usize) -> Self {
        assert!(n_inputs == 1 || n_inputs == 2, "variational encoders are simplex or duplex");
        VariationalEncoder {
            conv: Conv2dLayer::new(rng, Conv2dSpec::same(n_inputs * d, d, 3)),
            head: DistributionHead::new(rng, d, dist_dim),
        }
    }

    /// Produce `(μ, logσ²)` of the approximated `z^s` posterior from branch
    /// features `[B, n·d, H, W]`.
    pub fn forward<'t>(&self, s: &Session<'t>, features: Var<'t>) -> (Var<'t>, Var<'t>) {
        let h = self.conv.forward(s, features).relu();
        self.head.forward(s, crate::encoders::spatial_pool(h))
    }

    /// All parameters.
    pub fn params(&self) -> Vec<ParamRef> {
        let mut p = self.conv.params();
        p.extend(self.head.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_autograd::Tape;
    use muse_tensor::Tensor;

    #[test]
    fn branch_enumeration() {
        assert_eq!(Branch::all().len(), 3);
        assert_eq!(Branch::pairs().len(), 3);
        assert_eq!(Branch::Closeness.index(), 0);
        assert_eq!(Branch::Trend.label(), "T");
        // Pairs cover each unordered combination exactly once.
        let pairs = Branch::pairs();
        for (a, b) in pairs {
            assert!(a.index() < b.index());
        }
    }

    #[test]
    fn simplex_and_duplex_shapes() {
        let mut rng = SeededRng::new(1);
        let d = 4;
        let simplex = VariationalEncoder::new(&mut rng, 1, d, 6, 8);
        let duplex = VariationalEncoder::new(&mut rng, 2, d, 6, 8);
        let tape = Tape::new();
        let s = Session::new(&tape);
        let single = s.input(Tensor::ones(&[2, d, 2, 3]));
        let (mu, lv) = simplex.forward(&s, single);
        assert_eq!(mu.dims(), vec![2, 8]);
        assert_eq!(lv.dims(), vec![2, 8]);
        let pair = s.input(Tensor::ones(&[2, 2 * d, 2, 3]));
        let (mu2, _) = duplex.forward(&s, pair);
        assert_eq!(mu2.dims(), vec![2, 8]);
    }

    #[test]
    #[should_panic(expected = "simplex or duplex")]
    fn triplex_rejected() {
        let mut rng = SeededRng::new(2);
        let _ = VariationalEncoder::new(&mut rng, 3, 4, 6, 8);
    }

    #[test]
    fn gradients_flow() {
        let mut rng = SeededRng::new(3);
        let enc = VariationalEncoder::new(&mut rng, 1, 3, 4, 5);
        let tape = Tape::new();
        let s = Session::new(&tape);
        let x = s.input(Tensor::rand_uniform(&mut rng, &[1, 3, 2, 2], -1.0, 1.0));
        let (mu, lv) = enc.forward(&s, x);
        let loss = mu.square().sum().add(&lv.sum());
        s.backward(loss);
        assert!(enc.params().iter().any(|p| p.grad().norm() > 0.0));
    }
}
