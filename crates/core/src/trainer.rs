//! Mini-batch Adam training of MUSE-Net (the paper's joint training, §IV-E).

use crate::loss::LossTerms;
use crate::model::MuseNet;
use muse_autograd::Tape;
use muse_nn::{clip_grad_norm, Adam, Optimizer, Session};
use muse_obs::{self as obs, Json, ToJson};
use muse_tensor::init::SeededRng;
use muse_tensor::{arena, Tensor};
use muse_traffic::subseries::{batch, batch_into, Batch, SubSeriesSpec};
use muse_traffic::FlowSeries;
use std::time::Instant;

/// Training options.
///
/// Paper settings: Adam, learning rate `2e-4`, batch 8, up to 350 epochs.
/// The defaults here shorten the epoch budget to CPU scale; everything is
/// overridable.
#[derive(Debug, Clone)]
pub struct TrainerOptions {
    /// Number of passes over the training indices.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Global gradient-norm clip (0 disables).
    pub clip_norm: f32,
    /// Shuffle seed for epoch ordering.
    pub shuffle_seed: u64,
    /// Early-stop patience in epochs without validation improvement
    /// (0 disables early stopping).
    pub patience: usize,
    /// Cap on train batches per epoch (0 = no cap) — keeps harness sweeps
    /// CPU-feasible on large splits.
    pub max_batches_per_epoch: usize,
}

impl Default for TrainerOptions {
    fn default() -> Self {
        TrainerOptions {
            epochs: 12,
            batch_size: 8,
            learning_rate: 2e-4,
            clip_norm: 5.0,
            shuffle_seed: 7,
            patience: 0,
            max_batches_per_epoch: 0,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean total loss over the epoch's *finite* batches.
    pub train_loss: f32,
    /// Mean regression component.
    pub train_regression: f32,
    /// Validation RMSE in scaled units (if a validation set was given).
    pub val_rmse: Option<f32>,
    /// Batches skipped this epoch because the forward pass diverged
    /// (non-finite loss). These do not contribute to the means above.
    pub skipped_batches: usize,
}

impl ToJson for EpochRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("epoch", self.epoch.to_json()),
            ("train_loss", self.train_loss.to_json()),
            ("train_regression", self.train_regression.to_json()),
            ("val_rmse", self.val_rmse.to_json()),
            ("skipped_batches", self.skipped_batches.to_json()),
        ])
    }
}

/// Result of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// One record per completed epoch.
    pub epochs: Vec<EpochRecord>,
    /// Best validation RMSE seen (scaled units).
    pub best_val_rmse: Option<f32>,
    /// Loss terms of the final training batch (diagnostics).
    pub final_terms: Option<LossTerms>,
}

impl TrainReport {
    /// Mean training loss of the first epoch (for convergence assertions).
    pub fn first_loss(&self) -> f32 {
        self.epochs.first().map_or(f32::NAN, |e| e.train_loss)
    }

    /// Mean training loss of the last epoch.
    pub fn last_loss(&self) -> f32 {
        self.epochs.last().map_or(f32::NAN, |e| e.train_loss)
    }

    /// Total diverged batches skipped across all epochs.
    pub fn total_skipped_batches(&self) -> usize {
        self.epochs.iter().map(|e| e.skipped_batches).sum()
    }
}

impl ToJson for TrainReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("epochs", self.epochs.to_json()),
            ("best_val_rmse", self.best_val_rmse.to_json()),
            ("final_terms", self.final_terms.to_json()),
            ("skipped_batches", self.total_skipped_batches().to_json()),
        ])
    }
}

/// Trainer owning the model and optimizer state.
pub struct Trainer {
    model: MuseNet,
    options: TrainerOptions,
    optimizer: Adam,
}

impl Trainer {
    /// Create a trainer for a model.
    pub fn new(model: MuseNet, options: TrainerOptions) -> Self {
        let optimizer = Adam::with_defaults(model.params(), options.learning_rate);
        Trainer { model, options, optimizer }
    }

    /// The trained model.
    pub fn model(&self) -> &MuseNet {
        &self.model
    }

    /// Consume the trainer, returning the model.
    pub fn into_model(self) -> MuseNet {
        self.model
    }

    /// The options.
    pub fn options(&self) -> &TrainerOptions {
        &self.options
    }

    /// Fit on (scaled) flows. `train_idx`/`val_idx` are target indices into
    /// `flows` (see [`muse_traffic::dataset::TrafficDataset::split`]).
    pub fn fit(
        &mut self,
        flows: &FlowSeries,
        spec: &SubSeriesSpec,
        train_idx: &[usize],
        val_idx: &[usize],
    ) -> TrainReport {
        assert!(!train_idx.is_empty(), "no training indices");
        let mut shuffle_rng = SeededRng::new(self.options.shuffle_seed);
        let mut report = TrainReport { epochs: Vec::new(), best_val_rmse: None, final_terms: None };
        let mut best = f32::INFINITY;
        let mut since_best = 0usize;
        let mut best_snapshot: Option<Vec<Tensor>> = None;

        let run = obs::next_run_id();
        // Smoothed live loss, exported as a gauge so a scraper (or the
        // serve-path quality tooling) can watch training health without
        // parsing per-batch trace events.
        let mut loss_ewma = obs::Ewma::new(0.05);
        let opts = &self.options;
        obs::emit_with("train.start", || {
            vec![
                ("run", run.to_json()),
                ("epochs", opts.epochs.to_json()),
                ("batch_size", opts.batch_size.to_json()),
                ("learning_rate", opts.learning_rate.to_json()),
                ("clip_norm", opts.clip_norm.to_json()),
                ("shuffle_seed", opts.shuffle_seed.to_json()),
                ("patience", opts.patience.to_json()),
                ("max_batches_per_epoch", opts.max_batches_per_epoch.to_json()),
                ("train_size", train_idx.len().to_json()),
                ("val_size", val_idx.len().to_json()),
            ]
        });
        let fit_start = Instant::now();
        let _fit_span = obs::span("train.fit");

        // Reusable training context: one tape/session pair and one staging
        // batch for the whole run. Per step, `Tape::reset` + `Session::reset`
        // keep their capacity (and, through the tensor arena, the value
        // buffers), so the steady-state batch allocates (almost) nothing.
        let tape = Tape::new();
        let s = Session::new(&tape);
        let mut staging = Batch::staging();
        let mut indices: Vec<usize> = Vec::new();

        for epoch in 0..self.options.epochs {
            let epoch_start = Instant::now();
            let order = shuffle_rng.permutation(train_idx.len());
            let mut losses = Vec::new();
            let mut regs = Vec::new();
            let mut term_sums = [0.0f64; 4]; // kl_ex, kl_in, reconstruction, pulling
            let mut skipped = 0usize;
            let mut samples = 0usize;
            let mut batch_count = 0usize;
            for chunk in order.chunks(self.options.batch_size) {
                if self.options.max_batches_per_epoch > 0 && batch_count >= self.options.max_batches_per_epoch
                {
                    break;
                }
                let batch_start = Instant::now();
                let alloc0 = arena::stats();
                indices.clear();
                indices.extend(chunk.iter().map(|&i| train_idx[i]));
                {
                    let _span = obs::span("train.data");
                    batch_into(flows, spec, &indices, &mut staging);
                }
                tape.reset();
                s.reset();
                let pass = {
                    let _span = obs::span("train.forward");
                    self.model.train_graph(&s, &staging)
                };
                if !pass.terms.is_finite() {
                    // Skip a diverged batch rather than poisoning the run:
                    // it contributes to `skipped_batches`, never to the
                    // epoch's loss means.
                    skipped += 1;
                    obs::emit_with("train.batch_skipped", || {
                        vec![
                            ("run", run.to_json()),
                            ("epoch", epoch.to_json()),
                            ("batch", batch_count.to_json()),
                            ("terms", pass.terms.to_json()),
                        ]
                    });
                    continue;
                }
                losses.push(pass.terms.total);
                obs::gauge("train.loss_ewma").set(loss_ewma.update(pass.terms.total as f64));
                regs.push(pass.terms.regression);
                term_sums[0] += pass.terms.kl_exclusive as f64;
                term_sums[1] += pass.terms.kl_interactive as f64;
                term_sums[2] += pass.terms.reconstruction as f64;
                term_sums[3] += pass.terms.pulling as f64;
                report.final_terms = Some(pass.terms);
                {
                    let _span = obs::span("train.backward");
                    s.backward(pass.loss);
                    if self.options.clip_norm > 0.0 {
                        clip_grad_norm(self.optimizer.params(), self.options.clip_norm);
                    }
                }
                {
                    let _span = obs::span("train.optim");
                    self.optimizer.step();
                    self.optimizer.zero_grad();
                }
                samples += indices.len();
                obs::emit_with("train.batch", || {
                    let secs = batch_start.elapsed().as_secs_f64().max(1e-9);
                    let alloc1 = arena::stats();
                    vec![
                        ("run", run.to_json()),
                        ("epoch", epoch.to_json()),
                        ("batch", batch_count.to_json()),
                        ("size", indices.len().to_json()),
                        ("terms", pass.terms.to_json()),
                        ("duration_ms", (secs * 1e3).to_json()),
                        ("samples_per_sec", (indices.len() as f64 / secs).to_json()),
                        ("alloc_bytes", (alloc1.alloc_bytes - alloc0.alloc_bytes).to_json()),
                        ("pool_hits", (alloc1.pool_hits - alloc0.pool_hits).to_json()),
                    ]
                });
                batch_count += 1;
            }
            let train_loss = mean(&losses);
            let train_regression = mean(&regs);
            let val_rmse = if val_idx.is_empty() {
                None
            } else {
                let _span = obs::span("train.validate");
                Some(self.validation_rmse(flows, spec, val_idx))
            };
            let record =
                EpochRecord { epoch, train_loss, train_regression, val_rmse, skipped_batches: skipped };
            obs::emit_with("train.epoch", || {
                let n = losses.len().max(1) as f64;
                let secs = epoch_start.elapsed().as_secs_f64().max(1e-9);
                vec![
                    ("run", run.to_json()),
                    ("record", record.to_json()),
                    ("kl_exclusive", (term_sums[0] / n).to_json()),
                    ("kl_interactive", (term_sums[1] / n).to_json()),
                    ("reconstruction", (term_sums[2] / n).to_json()),
                    ("pulling", (term_sums[3] / n).to_json()),
                    ("batches", batch_count.to_json()),
                    ("duration_ms", (secs * 1e3).to_json()),
                    ("samples_per_sec", (samples as f64 / secs).to_json()),
                ]
            });
            report.epochs.push(record);

            if let Some(v) = val_rmse {
                if v < best {
                    best = v;
                    since_best = 0;
                    best_snapshot = Some(muse_nn::snapshot(self.optimizer.params()));
                } else {
                    since_best += 1;
                    if self.options.patience > 0 && since_best >= self.options.patience {
                        obs::emit_with("train.early_stop", || {
                            vec![
                                ("run", run.to_json()),
                                ("epoch", epoch.to_json()),
                                ("best_val_rmse", best.to_json()),
                                ("epochs_since_best", since_best.to_json()),
                            ]
                        });
                        break;
                    }
                }
            }
        }
        if best.is_finite() {
            report.best_val_rmse = Some(best);
        }
        // Keep the best-validation parameters (standard early-selection).
        if let Some(snap) = best_snapshot {
            muse_nn::restore(self.optimizer.params(), &snap);
        }
        obs::emit_with("train.end", || {
            vec![
                ("run", run.to_json()),
                ("epochs_run", report.epochs.len().to_json()),
                ("best_val_rmse", report.best_val_rmse.to_json()),
                ("skipped_batches", report.total_skipped_batches().to_json()),
                ("final_terms", report.final_terms.to_json()),
                ("duration_ms", (fit_start.elapsed().as_secs_f64() * 1e3).to_json()),
            ]
        });
        report
    }

    /// RMSE of deterministic predictions over a set of targets, in the
    /// (scaled) units of `flows`.
    pub fn validation_rmse(&self, flows: &FlowSeries, spec: &SubSeriesSpec, indices: &[usize]) -> f32 {
        let preds = self.predict_indices(flows, spec, indices);
        let truths = stack_frames(flows, indices);
        muse_metrics_rmse(&preds, &truths)
    }

    /// Deterministic predictions for arbitrary target indices, batched for
    /// memory friendliness: returns `[N, 2, H, W]`.
    pub fn predict_indices(&self, flows: &FlowSeries, spec: &SubSeriesSpec, indices: &[usize]) -> Tensor {
        assert!(!indices.is_empty(), "no indices to predict");
        let mut parts: Vec<Tensor> = Vec::new();
        for chunk in indices.chunks(self.options.batch_size.max(1)) {
            let b = batch(flows, spec, chunk);
            parts.push(self.model.predict(&b));
        }
        let refs: Vec<&Tensor> = parts.iter().collect();
        Tensor::concat(&refs, 0)
    }
}

/// Stack ground-truth frames for target indices: `[N, 2, H, W]`.
pub fn stack_frames(flows: &FlowSeries, indices: &[usize]) -> Tensor {
    let frames: Vec<Tensor> = indices.iter().map(|&n| flows.frame(n)).collect();
    let refs: Vec<&Tensor> = frames.iter().collect();
    Tensor::stack(&refs)
}

fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

// Local RMSE to avoid a dependency edge on muse-metrics from the core crate.
fn muse_metrics_rmse(pred: &Tensor, truth: &Tensor) -> f32 {
    assert_eq!(pred.dims(), truth.dims(), "rmse shape mismatch");
    let mse: f32 =
        pred.as_slice().iter().zip(truth.as_slice()).map(|(&p, &t)| (p - t) * (p - t)).sum::<f32>()
            / pred.len() as f32;
    mse.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ablation::AblationVariant;
    use crate::config::MuseNetConfig;
    use muse_tensor::Tensor;
    use muse_traffic::{GridMap, SubSeriesSpec};

    /// A tiny synthetic flow series with a strong daily pattern the model
    /// can learn quickly.
    fn patterned_flows(grid: GridMap, days: usize, f: usize) -> FlowSeries {
        let t = days * f;
        let mut data = Vec::with_capacity(t * 2 * grid.cells());
        for i in 0..t {
            let hour = (i % f) as f32 / f as f32;
            let level = (2.0 * std::f32::consts::PI * hour).sin() * 0.6;
            for ch in 0..2 {
                for cell in 0..grid.cells() {
                    let phase = 0.1 * (cell as f32) + 0.05 * ch as f32;
                    data.push((level + phase).tanh());
                }
            }
        }
        FlowSeries::from_tensor(grid, Tensor::from_vec(data, &[t, 2, grid.height, grid.width]))
    }

    fn tiny_setup() -> (MuseNetConfig, FlowSeries, Vec<usize>, Vec<usize>) {
        let grid = GridMap::new(3, 3);
        let spec = SubSeriesSpec { lc: 2, lp: 2, lt: 1, intervals_per_day: 6, trend_days: 7 };
        let mut cfg = MuseNetConfig::cpu_profile(grid, spec);
        cfg.d = 4;
        cfg.k = 8;
        let flows = patterned_flows(grid, 10, 6);
        let first = spec.min_target();
        let train: Vec<usize> = (first..first + 12).collect();
        let val: Vec<usize> = (first + 12..first + 16).collect();
        (cfg, flows, train, val)
    }

    #[test]
    fn training_reduces_loss_and_tracks_validation() {
        let (cfg, flows, train, val) = tiny_setup();
        let model = MuseNet::new(cfg.clone());
        let mut trainer = Trainer::new(
            model,
            TrainerOptions { epochs: 6, batch_size: 4, learning_rate: 3e-3, ..Default::default() },
        );
        let report = trainer.fit(&flows, &cfg.spec, &train, &val);
        assert_eq!(report.epochs.len(), 6);
        assert!(
            report.last_loss() < report.first_loss(),
            "{} -> {}",
            report.first_loss(),
            report.last_loss()
        );
        assert!(report.best_val_rmse.is_some());
        assert!(report.final_terms.unwrap().is_finite());
    }

    #[test]
    fn learned_model_beats_untrained_on_validation() {
        let (cfg, flows, train, val) = tiny_setup();
        let untrained_rmse = {
            let t = Trainer::new(MuseNet::new(cfg.clone()), TrainerOptions::default());
            t.validation_rmse(&flows, &cfg.spec, &val)
        };
        let trained_rmse = {
            let mut t = Trainer::new(
                MuseNet::new(cfg.clone()),
                TrainerOptions { epochs: 8, batch_size: 4, learning_rate: 3e-3, ..Default::default() },
            );
            t.fit(&flows, &cfg.spec, &train, &val);
            t.validation_rmse(&flows, &cfg.spec, &val)
        };
        assert!(
            trained_rmse < untrained_rmse,
            "training did not help: {trained_rmse} vs untrained {untrained_rmse}"
        );
    }

    #[test]
    fn early_stopping_respects_patience() {
        let (cfg, flows, train, val) = tiny_setup();
        let mut trainer = Trainer::new(
            MuseNet::new(cfg.clone()),
            TrainerOptions {
                epochs: 50,
                batch_size: 4,
                learning_rate: 0.0, // frozen: validation can never improve
                patience: 2,
                ..Default::default()
            },
        );
        let report = trainer.fit(&flows, &cfg.spec, &train, &val);
        assert!(report.epochs.len() < 50, "early stopping never triggered");
    }

    #[test]
    fn predict_indices_matches_batched_shapes() {
        let (cfg, flows, train, _) = tiny_setup();
        let trainer =
            Trainer::new(MuseNet::new(cfg.clone()), TrainerOptions { batch_size: 3, ..Default::default() });
        let preds = trainer.predict_indices(&flows, &cfg.spec, &train[..7]);
        assert_eq!(preds.dims(), &[7, 2, 3, 3]);
        let truths = stack_frames(&flows, &train[..7]);
        assert_eq!(truths.dims(), preds.dims());
    }

    #[test]
    fn max_batches_caps_epoch_cost() {
        let (cfg, flows, train, _) = tiny_setup();
        let mut trainer = Trainer::new(
            MuseNet::new(cfg.clone()),
            TrainerOptions { epochs: 1, batch_size: 2, max_batches_per_epoch: 2, ..Default::default() },
        );
        // Runs fast and records a single epoch; correctness of the cap is
        // observable through the epoch record being present.
        let report = trainer.fit(&flows, &cfg.spec, &train, &[]);
        assert_eq!(report.epochs.len(), 1);
        assert!(report.epochs[0].val_rmse.is_none());
    }

    #[test]
    fn ablated_variants_train_too() {
        let (mut cfg, flows, train, val) = tiny_setup();
        for variant in [AblationVariant::WithoutSpatial, AblationVariant::WithoutMultiDisentangle] {
            cfg.variant = variant;
            let mut trainer = Trainer::new(
                MuseNet::new(cfg.clone()),
                TrainerOptions { epochs: 2, batch_size: 4, learning_rate: 1e-3, ..Default::default() },
            );
            let report = trainer.fit(&flows, &cfg.spec, &train, &val);
            assert!(report.last_loss().is_finite(), "{variant:?} diverged");
        }
    }
}
