//! The ResPlus spatial module, following DeepSTN+ (Feng et al.).
//!
//! Each block combines a local 3×3 convolution with a long-range "plus"
//! unit: a bottlenecked fully connected map over the *whole* flattened grid,
//! letting distant regions influence each other in one hop — the property
//! DeepSTN+ introduces over plain residual CNNs. The block output is added
//! back residually.
//!
//! The module fuses MUSE-Net's exclusive and interactive representation maps
//! and emits the `[B, 2, H, W]` forecast through a tanh head (the data is
//! min-max scaled to `[-1, 1]`).

use muse_autograd::Var;
use muse_nn::{Conv2dLayer, Linear, ParamRef, Session};
use muse_tensor::init::SeededRng;
use muse_tensor::Conv2dSpec;

/// Long-range unit: 1×1-conv bottleneck to `plus_channels`, then a dense map
/// across all grid cells.
#[derive(Debug)]
struct PlusUnit {
    reduce: Conv2dLayer,
    dense: Linear,
    plus_channels: usize,
    height: usize,
    width: usize,
}

impl PlusUnit {
    fn new(
        rng: &mut SeededRng,
        in_channels: usize,
        plus_channels: usize,
        height: usize,
        width: usize,
    ) -> Self {
        let cells = height * width;
        PlusUnit {
            reduce: Conv2dLayer::new(
                rng,
                Conv2dSpec {
                    in_channels,
                    out_channels: plus_channels,
                    kernel: (1, 1),
                    stride: (1, 1),
                    padding: (0, 0),
                },
            ),
            dense: Linear::new(rng, plus_channels * cells, plus_channels * cells),
            plus_channels,
            height,
            width,
        }
    }

    fn forward<'t>(&self, s: &Session<'t>, x: Var<'t>) -> Var<'t> {
        let b = x.dims()[0];
        let reduced = self.reduce.forward(s, x).relu();
        let flat = reduced.reshape(&[b, self.plus_channels * self.height * self.width]);
        self.dense.forward(s, flat).relu().reshape(&[b, self.plus_channels, self.height, self.width])
    }

    fn params(&self) -> Vec<ParamRef> {
        let mut p = self.reduce.params();
        p.extend(self.dense.params());
        p
    }
}

/// One ResPlus block: `relu(x + concat[conv3x3(x), plus(x)])`.
#[derive(Debug)]
struct ResPlusBlock {
    conv: Conv2dLayer,
    plus: PlusUnit,
}

impl ResPlusBlock {
    fn new(rng: &mut SeededRng, channels: usize, plus_channels: usize, height: usize, width: usize) -> Self {
        assert!(
            channels > plus_channels,
            "block channels {channels} must exceed plus channels {plus_channels}"
        );
        ResPlusBlock {
            conv: Conv2dLayer::new(rng, Conv2dSpec::same(channels, channels - plus_channels, 3)),
            plus: PlusUnit::new(rng, channels, plus_channels, height, width),
        }
    }

    fn forward<'t>(&self, s: &Session<'t>, x: Var<'t>) -> Var<'t> {
        let local = self.conv.forward(s, x).relu();
        let global = self.plus.forward(s, x);
        let merged = Var::concat(&[local, global], 1);
        x.add(&merged).relu()
    }

    fn params(&self) -> Vec<ParamRef> {
        let mut p = self.conv.params();
        p.extend(self.plus.params());
        p
    }
}

/// The full spatial head: entry 1×1 conv, `n` ResPlus blocks, a per-cell
/// Hadamard fusion of recent frames (ST-ResNet / DeepSTN+ style
/// `Σ W_i ∘ X_i`), and a tanh output.
#[derive(Debug)]
pub struct ResPlus {
    entry: Conv2dLayer,
    blocks: Vec<ResPlusBlock>,
    head: Conv2dLayer,
    /// One per-cell `[2, H, W]` Hadamard weight per skip frame.
    hadamard: Vec<ParamRef>,
}

impl ResPlus {
    /// Build the module.
    ///
    /// * `in_channels` — channels of the fused representation stack;
    /// * `channels` — internal width (the paper's `d` works well);
    /// * `blocks` — number of ResPlus blocks;
    /// * `plus_channels` — bottleneck width of each long-range unit;
    /// * `skip_frames` — number of `[B, 2, H, W]` recent frames fused into
    ///   the output through per-cell Hadamard weights (ST-ResNet's fusion).
    ///   The first weight starts near 1 (persistence prior), the rest near 0.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rng: &mut SeededRng,
        in_channels: usize,
        channels: usize,
        blocks: usize,
        plus_channels: usize,
        height: usize,
        width: usize,
        skip_frames: usize,
    ) -> Self {
        assert!(blocks >= 1, "ResPlus needs at least one block");
        let _ = rng.uniform(0.0, 1.0); // keep the init stream position stable across variants
        let hadamard = (0..skip_frames)
            .map(|i| {
                let init = if i == 0 { 0.8 } else { 0.1 };
                muse_nn::Param::new(
                    format!("resplus.hadamard[{i}]"),
                    muse_tensor::Tensor::full(&[2, height, width], init),
                )
            })
            .collect();
        ResPlus {
            entry: Conv2dLayer::new(
                rng,
                Conv2dSpec {
                    in_channels,
                    out_channels: channels,
                    kernel: (1, 1),
                    stride: (1, 1),
                    padding: (0, 0),
                },
            ),
            blocks: (0..blocks)
                .map(|_| ResPlusBlock::new(rng, channels, plus_channels, height, width))
                .collect(),
            head: Conv2dLayer::new(rng, Conv2dSpec::same(channels, 2, 3)),
            hadamard,
        }
    }

    /// Fused representation maps `[B, in_channels, H, W]` plus recent
    /// frames (one per configured skip) → forecast `[B, 2, H, W]` in
    /// `[-1, 1]`.
    pub fn forward<'t>(&self, s: &Session<'t>, x: Var<'t>, skips: &[Var<'t>]) -> Var<'t> {
        assert_eq!(skips.len(), self.hadamard.len(), "skip frame count mismatch");
        let mut h = self.entry.forward(s, x).relu();
        for block in &self.blocks {
            h = block.forward(s, h);
        }
        let mut out = self.head.forward(s, h);
        for (w, &frame) in self.hadamard.iter().zip(skips) {
            let wv = s.param(w);
            out = out.add(&frame.mul(&wv));
        }
        out.tanh()
    }

    /// All parameters.
    pub fn params(&self) -> Vec<ParamRef> {
        let mut p = self.entry.params();
        for b in &self.blocks {
            p.extend(b.params());
        }
        p.extend(self.head.params());
        p.extend(self.hadamard.iter().cloned());
        p
    }
}

/// The `w/o-Spatial` ablation head: a per-cell 1×1 convolution with no
/// spatial mixing at all (the Hadamard skip fusion, being per-cell, stays).
#[derive(Debug)]
pub struct PointwiseHead {
    conv: Conv2dLayer,
    hadamard: Vec<ParamRef>,
}

impl PointwiseHead {
    /// Build the pointwise head.
    pub fn new(
        rng: &mut SeededRng,
        in_channels: usize,
        height: usize,
        width: usize,
        skip_frames: usize,
    ) -> Self {
        let hadamard = (0..skip_frames)
            .map(|i| {
                let init = if i == 0 { 0.8 } else { 0.1 };
                muse_nn::Param::new(
                    format!("pointwise.hadamard[{i}]"),
                    muse_tensor::Tensor::full(&[2, height, width], init),
                )
            })
            .collect();
        PointwiseHead {
            conv: Conv2dLayer::new(
                rng,
                Conv2dSpec { in_channels, out_channels: 2, kernel: (1, 1), stride: (1, 1), padding: (0, 0) },
            ),
            hadamard,
        }
    }

    /// `[B, in_channels, H, W] → [B, 2, H, W]`.
    pub fn forward<'t>(&self, s: &Session<'t>, x: Var<'t>, skips: &[Var<'t>]) -> Var<'t> {
        assert_eq!(skips.len(), self.hadamard.len(), "skip frame count mismatch");
        let mut out = self.conv.forward(s, x);
        for (w, &frame) in self.hadamard.iter().zip(skips) {
            let wv = s.param(w);
            out = out.add(&frame.mul(&wv));
        }
        out.tanh()
    }

    /// All parameters.
    pub fn params(&self) -> Vec<ParamRef> {
        let mut p = self.conv.params();
        p.extend(self.hadamard.iter().cloned());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_autograd::Tape;
    use muse_tensor::Tensor;

    #[test]
    fn resplus_output_shape_and_range() {
        let mut rng = SeededRng::new(1);
        let rp = ResPlus::new(&mut rng, 12, 8, 2, 2, 3, 4, 0);
        let tape = Tape::new();
        let s = Session::new(&tape);
        let x = s.input(Tensor::rand_uniform(&mut rng, &[2, 12, 3, 4], -1.0, 1.0));
        let y = rp.forward(&s, x, &[]);
        assert_eq!(y.dims(), vec![2, 2, 3, 4]);
        assert!(y.value().max() <= 1.0 && y.value().min() >= -1.0);
    }

    #[test]
    fn plus_unit_mixes_distant_cells() {
        // Changing a far-away input cell must affect the output at (0,0) —
        // impossible in a single 3×3 conv on a large grid, possible through
        // the plus unit. A particular random init can leave that one path
        // behind dead ReLUs, so sweep a few seeds and require the
        // architecture to propagate for at least one.
        let h = 1;
        let w = 9; // 3×3 conv footprint cannot reach across 9 columns
        let mut max_delta = 0.0f32;
        for seed in 0..8u64 {
            let mut rng = SeededRng::new(seed);
            let rp = ResPlus::new(&mut rng, 2, 6, 1, 2, h, w, 0);
            // A non-zero base keeps the ReLU chains active so the long-range
            // signal is observable.
            let base = Tensor::full(&[1, 2, h, w], 0.3);
            let mut poked = base.clone();
            *poked.at_mut(&[0, 0, 0, 8]) = 1.5;

            let tape = Tape::new();
            let s = Session::new(&tape);
            let y0 = rp.forward(&s, s.input(base), &[]);
            let tape2 = Tape::new();
            let s2 = Session::new(&tape2);
            let y1 = rp.forward(&s2, s2.input(poked), &[]);
            let delta = (y0.value().at(&[0, 0, 0, 0]) - y1.value().at(&[0, 0, 0, 0])).abs();
            max_delta = max_delta.max(delta);
            if max_delta > 1e-7 {
                break;
            }
        }
        assert!(max_delta > 1e-7, "plus unit did not propagate long-range info (max delta {max_delta})");
    }

    #[test]
    fn pointwise_head_no_spatial_mixing() {
        // The w/o-Spatial head must NOT propagate information between cells.
        let mut rng = SeededRng::new(3);
        let head = PointwiseHead::new(&mut rng, 3, 2, 2, 0);
        let base = Tensor::zeros(&[1, 3, 2, 2]);
        let mut poked = base.clone();
        *poked.at_mut(&[0, 0, 1, 1]) = 1.0;
        let tape = Tape::new();
        let s = Session::new(&tape);
        let y0 = head.forward(&s, s.input(base), &[]);
        let tape2 = Tape::new();
        let s2 = Session::new(&tape2);
        let y1 = head.forward(&s2, s2.input(poked), &[]);
        // Cell (0,0) unchanged; cell (1,1) changed.
        assert!((y0.value().at(&[0, 0, 0, 0]) - y1.value().at(&[0, 0, 0, 0])).abs() < 1e-7);
        assert!((y0.value().at(&[0, 0, 1, 1]) - y1.value().at(&[0, 0, 1, 1])).abs() > 1e-7);
    }

    #[test]
    fn trainable_to_fit_target() {
        let mut rng = SeededRng::new(4);
        let rp = ResPlus::new(&mut rng, 4, 6, 1, 2, 2, 3, 0);
        let x = Tensor::rand_uniform(&mut rng, &[2, 4, 2, 3], -1.0, 1.0);
        let target = Tensor::rand_uniform(&mut rng, &[2, 2, 2, 3], -0.5, 0.5);
        let mut opt = muse_nn::Adam::with_defaults(rp.params(), 0.01);
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let tape = Tape::new();
            let s = Session::new(&tape);
            let out = rp.forward(&s, s.input(x.clone()), &[]);
            let loss = muse_autograd::vae_ops::mse(&out, &target);
            last = loss.item();
            s.backward(loss);
            use muse_nn::Optimizer;
            opt.step();
            opt.zero_grad();
        }
        assert!(last < 0.05, "ResPlus failed to fit: {last}");
    }

    #[test]
    fn hadamard_skip_starts_near_persistence() {
        // With skip weights initialized at (0.8, 0.1, 0.1) and a small
        // random head, the initial prediction tracks the first skip frame.
        let mut rng = SeededRng::new(9);
        let rp = ResPlus::new(&mut rng, 4, 6, 1, 2, 2, 3, 3);
        let tape = muse_autograd::Tape::new();
        let s = Session::new(&tape);
        let stack = s.input(muse_tensor::Tensor::zeros(&[1, 4, 2, 3]));
        let frame = muse_tensor::Tensor::full(&[1, 2, 2, 3], 0.5);
        let skips = [
            s.input(frame.clone()),
            s.input(muse_tensor::Tensor::zeros(&[1, 2, 2, 3])),
            s.input(muse_tensor::Tensor::zeros(&[1, 2, 2, 3])),
        ];
        let y = rp.forward(&s, stack, &skips);
        // tanh(0.8*0.5 + head(0)) ≈ tanh(0.4) ≈ 0.38
        let expected = (0.4f32).tanh();
        assert!((y.value().mean() - expected).abs() < 0.15, "mean {}", y.value().mean());
    }

    #[test]
    fn param_count_grows_with_blocks() {
        let mut rng = SeededRng::new(5);
        let one = ResPlus::new(&mut rng, 4, 6, 1, 2, 2, 2, 0);
        let two = ResPlus::new(&mut rng, 4, 6, 2, 2, 2, 2, 0);
        let count = |ps: &[ParamRef]| ps.iter().map(|p| p.len()).sum::<usize>();
        assert!(count(&two.params()) > count(&one.params()));
    }
}
