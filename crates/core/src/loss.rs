//! The merged objective of Eq. (26), assembled from the lower bounds of
//! Eqs. (27)–(30).
//!
//! Everything is written in *minimization* form (the negation of the paper's
//! maximization):
//!
//! ```text
//! minimize   w_ex · Σ_i KL[r(z^i|i) ‖ N(0,I)]          (from Eq. 27)
//!          +        KL[r(z^s|·) ‖ N(0,I)]
//!          + w_ex · Σ_i MSE(decode(z^i, z^s), i)        (from Eq. 28)
//!          + λ · Σ_pairs ( KL[d^{ij} ‖ g^i] + KL[d^{ij} ‖ g^j]
//!                          − sat(KL[r(z^s|·) ‖ d^{ij}]) )   (from Eq. 29)
//!          + MSE(Y_n, X_n)                              (Eq. 30)
//! ```
//!
//! where `w_ex = 1 + λ` when semantic-pushing is active and `1` otherwise,
//! and `sat(x) = cap · tanh(x / cap)` saturates the *maximized* KL term —
//! the theoretical bound (conditional interaction information) is finite,
//! but an unconstrained network could grow it without limit, so we cap it.

use crate::ablation::AblationVariant;
use muse_autograd::Var;

/// Scalar values of each objective component for one forward pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossTerms {
    /// KL of the three exclusive posteriors to the standard normal prior.
    pub kl_exclusive: f32,
    /// KL of the interactive posterior(s) to the standard normal prior.
    pub kl_interactive: f32,
    /// Reconstruction (semantic-pushing) term.
    pub reconstruction: f32,
    /// Semantic-pulling term (0 when ablated).
    pub pulling: f32,
    /// Forecast regression `L_Reg`.
    pub regression: f32,
    /// The weighted total that training minimizes.
    pub total: f32,
}

impl LossTerms {
    /// All components finite?
    pub fn is_finite(&self) -> bool {
        [
            self.kl_exclusive,
            self.kl_interactive,
            self.reconstruction,
            self.pulling,
            self.regression,
            self.total,
        ]
        .iter()
        .all(|v| v.is_finite())
    }
}

impl muse_obs::ToJson for LossTerms {
    fn to_json(&self) -> muse_obs::Json {
        muse_obs::Json::obj([
            ("kl_exclusive", self.kl_exclusive.to_json()),
            ("kl_interactive", self.kl_interactive.to_json()),
            ("reconstruction", self.reconstruction.to_json()),
            ("pulling", self.pulling.to_json()),
            ("regression", self.regression.to_json()),
            ("total", self.total.to_json()),
        ])
    }
}

/// Objective weights derived from the variant and `λ` (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectiveWeights {
    /// Weight on exclusive KL and reconstruction terms (`1+λ` or `1`).
    pub exclusive: f32,
    /// Weight on the semantic-pulling block (`λ` or `0`).
    pub pulling: f32,
    /// Saturation cap for the maximized pulling KL.
    pub pull_cap: f32,
}

impl ObjectiveWeights {
    /// Derive weights for a variant.
    pub fn for_variant(variant: AblationVariant, lambda: f32, pull_cap: f32) -> Self {
        ObjectiveWeights {
            exclusive: if variant.uses_pushing() { 1.0 + lambda } else { 1.0 },
            pulling: if variant.uses_pulling() { lambda } else { 0.0 },
            pull_cap,
        }
    }
}

/// Smoothly saturate a non-negative scalar variable at `cap`:
/// `sat(x) = cap · tanh(x / cap)`.
///
/// Near zero this is ≈ identity (full gradient); as `x → ∞` it approaches
/// `cap` (vanishing gradient), preventing the maximized KL from running
/// away.
pub fn saturate<'t>(x: Var<'t>, cap: f32) -> Var<'t> {
    assert!(cap > 0.0, "saturation cap must be positive");
    x.mul_scalar(1.0 / cap).tanh().mul_scalar(cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_autograd::Tape;
    use muse_tensor::Tensor;

    #[test]
    fn weights_follow_variant() {
        let w = ObjectiveWeights::for_variant(AblationVariant::Full, 1.0, 5.0);
        assert_eq!(w.exclusive, 2.0);
        assert_eq!(w.pulling, 1.0);

        let w = ObjectiveWeights::for_variant(AblationVariant::WithoutSemanticPushing, 1.0, 5.0);
        assert_eq!(w.exclusive, 1.0);
        assert_eq!(w.pulling, 1.0);

        let w = ObjectiveWeights::for_variant(AblationVariant::WithoutSemanticPulling, 1.0, 5.0);
        assert_eq!(w.exclusive, 2.0);
        assert_eq!(w.pulling, 0.0);

        let w = ObjectiveWeights::for_variant(AblationVariant::WithoutMultiDisentangle, 0.5, 5.0);
        assert_eq!(w.exclusive, 1.5);
        assert_eq!(w.pulling, 0.0);
    }

    #[test]
    fn lambda_scales_weights() {
        let w = ObjectiveWeights::for_variant(AblationVariant::Full, 0.1, 5.0);
        assert!((w.exclusive - 1.1).abs() < 1e-6);
        assert!((w.pulling - 0.1).abs() < 1e-6);
    }

    #[test]
    fn saturate_is_identity_near_zero_and_capped_far() {
        let tape = Tape::new();
        let small = tape.leaf(Tensor::scalar(0.01));
        let sat = saturate(small, 5.0);
        assert!((sat.item() - 0.01).abs() < 1e-4);
        let big = tape.leaf(Tensor::scalar(100.0));
        let sat = saturate(big, 5.0);
        assert!(sat.item() <= 5.0 && sat.item() > 4.9);
    }

    #[test]
    fn saturate_gradient_vanishes_at_cap() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::scalar(100.0));
        let y = saturate(x, 5.0);
        let grads = tape.backward(y);
        assert!(grads.get(x).unwrap().item() < 1e-3);
    }

    #[test]
    fn loss_terms_finite_check() {
        let ok = LossTerms {
            kl_exclusive: 1.0,
            kl_interactive: 1.0,
            reconstruction: 0.5,
            pulling: -0.5,
            regression: 0.1,
            total: 2.1,
        };
        assert!(ok.is_finite());
        let bad = LossTerms { total: f32::NAN, ..ok };
        assert!(!bad.is_finite());
    }
}
