//! The MUSE-Net model: joint forward pass, objective assembly, prediction,
//! and representation extraction.

use crate::config::MuseNetConfig;
use crate::decoder::ReconstructedDecoder;
use crate::encoders::{EncoderOutput, ExclusiveEncoder, InteractiveEncoder};
use crate::loss::{saturate, LossTerms, ObjectiveWeights};
use crate::resplus::{PointwiseHead, ResPlus};
use crate::variational::{Branch, VariationalEncoder};
use muse_autograd::vae_ops::{kl_between_fused, kl_to_standard_normal, reparameterize, sse_per_sample};
use muse_autograd::{Tape, Var};
use muse_nn::{ParamRef, Session};
use muse_obs as obs;
use muse_tensor::init::SeededRng;
use muse_tensor::Tensor;
use muse_traffic::subseries::SubSeriesSpec;
use muse_traffic::{Batch, FlowSeries};
use std::cell::RefCell;

/// Spatial dependency module: ResPlus, or a pointwise head for the
/// `w/o-Spatial` ablation.
enum SpatialHead {
    ResPlus(ResPlus),
    Pointwise(PointwiseHead),
}

/// Interactive pathway: one multivariate `Z^S`, or three pairwise
/// representations for the `w/o-MultiDisentangle` ablation.
// The pairwise variant is ~3x larger, but at most one model exists per run,
// so the size gap buys nothing to box away.
#[allow(clippy::large_enum_variant)]
enum InteractivePath {
    Multivariate {
        encoder: InteractiveEncoder,
        /// `g_τ^i(z^s|i)` per branch (None when pulling is ablated).
        simplex: Option<[VariationalEncoder; 3]>,
        /// `d_ω^{i,j}(z^s|i,j)` per unordered pair.
        duplex: Option<[VariationalEncoder; 3]>,
    },
    Pairwise {
        /// Encoders over pairs `(C,P), (C,T), (P,T)`.
        encoders: [VariationalPairEncoder; 3],
    },
}

/// A pairwise interactive encoder (the `w/o-MultiDisentangle` replacement):
/// shares the [`InteractiveEncoder`] structure over two branches.
struct VariationalPairEncoder {
    inner: InteractiveEncoder,
}

/// The MUSE-Net model. See the crate docs for the architecture overview.
pub struct MuseNet {
    config: MuseNetConfig,
    exclusive: [ExclusiveEncoder; 3],
    interactive: InteractivePath,
    decoders: [ReconstructedDecoder; 3],
    spatial: SpatialHead,
    /// Reparameterization noise source (deterministic per model seed).
    noise: RefCell<SeededRng>,
}

/// One training-step graph: the prediction variable, the total loss to
/// backprop, and the component read-out.
pub struct ForwardPass<'t> {
    /// Forecast `[B, 2, H, W]` in scaled units.
    pub prediction: Var<'t>,
    /// Weighted total objective (minimize).
    pub loss: Var<'t>,
    /// Scalar components for logging.
    pub terms: LossTerms,
}

/// Deterministic per-sample representations for the analysis experiments
/// (RQ3–RQ5): spatially pooled feature maps and posterior means.
#[derive(Debug, Clone)]
pub struct Representations {
    /// Pooled exclusive representations `[B, d]`, order C, P, T.
    pub exclusive: [Tensor; 3],
    /// Pooled interactive representation `[B, d]` (mean of the pairwise
    /// maps for the `w/o-MultiDisentangle` variant).
    pub interactive: Tensor,
    /// Exclusive posterior means `[B, k/4]`, order C, P, T.
    pub exclusive_mu: [Tensor; 3],
    /// Interactive posterior mean `[B, k]`.
    pub interactive_mu: Tensor,
}

/// Output of a forward-only serving pass ([`MuseNet::infer_raw`]).
#[derive(Debug, Clone)]
pub struct InferenceOutput {
    /// Forecast `[B, 2, H, W]` in scaled units.
    pub prediction: Tensor,
    /// L2 norms of the exclusive posterior means, order C, P, T.
    pub exclusive_mu_norms: [f32; 3],
    /// L2 norm of the interactive posterior mean (of the concatenated
    /// pairwise means for the `w/o-MultiDisentangle` variant).
    pub interactive_mu_norm: f32,
}

impl MuseNet {
    /// Build a model for the given configuration.
    pub fn new(config: MuseNetConfig) -> Self {
        config.validate();
        let mut rng = SeededRng::new(config.seed);
        let cells = config.cells();
        let d = config.d;
        let k4 = config.exclusive_dim();
        let k = config.interactive_dim();
        let (h, w) = (config.grid.height, config.grid.width);

        let exclusive = [
            ExclusiveEncoder::new(&mut rng, config.closeness_channels(), d, cells, k4),
            ExclusiveEncoder::new(&mut rng, config.period_channels(), d, cells, k4),
            ExclusiveEncoder::new(&mut rng, config.trend_channels(), d, cells, k4),
        ];

        let interactive = if config.variant.uses_multivariate_interactive() {
            let encoder = InteractiveEncoder::new(&mut rng, 3, d, cells, k);
            let (simplex, duplex) = if config.variant.uses_pulling() {
                (
                    Some([
                        VariationalEncoder::new(&mut rng, 1, d, cells, k),
                        VariationalEncoder::new(&mut rng, 1, d, cells, k),
                        VariationalEncoder::new(&mut rng, 1, d, cells, k),
                    ]),
                    Some([
                        VariationalEncoder::new(&mut rng, 2, d, cells, k),
                        VariationalEncoder::new(&mut rng, 2, d, cells, k),
                        VariationalEncoder::new(&mut rng, 2, d, cells, k),
                    ]),
                )
            } else {
                (None, None)
            };
            InteractivePath::Multivariate { encoder, simplex, duplex }
        } else {
            InteractivePath::Pairwise {
                encoders: [
                    VariationalPairEncoder { inner: InteractiveEncoder::new(&mut rng, 2, d, cells, k) },
                    VariationalPairEncoder { inner: InteractiveEncoder::new(&mut rng, 2, d, cells, k) },
                    VariationalPairEncoder { inner: InteractiveEncoder::new(&mut rng, 2, d, cells, k) },
                ],
            }
        };

        // Decoder latent width: z^i plus the interactive sample(s) paired
        // with branch i.
        let dec_z = if config.variant.uses_multivariate_interactive() { k4 + k } else { k4 + 2 * k };
        let decoders = [
            ReconstructedDecoder::new(&mut rng, dec_z, config.closeness_channels(), h, w),
            ReconstructedDecoder::new(&mut rng, dec_z, config.period_channels(), h, w),
            ReconstructedDecoder::new(&mut rng, dec_z, config.trend_channels(), h, w),
        ];

        // Spatial module input: 3 exclusive maps + 1 interactive map (or 3
        // pairwise maps).
        let spatial_in = if config.variant.uses_multivariate_interactive() { 4 * d } else { 6 * d };
        // Three Hadamard skip frames: the most recent closeness, period,
        // and trend frames (ST-ResNet-style per-cell fusion).
        let spatial = if config.variant.uses_spatial() {
            SpatialHead::ResPlus(ResPlus::new(
                &mut rng,
                spatial_in,
                d.max(config.plus_channels + 1),
                config.resplus_blocks,
                config.plus_channels,
                h,
                w,
                3,
            ))
        } else {
            SpatialHead::Pointwise(PointwiseHead::new(&mut rng, spatial_in, h, w, 3))
        };

        let noise = RefCell::new(SeededRng::new(config.seed.wrapping_add(0x5EED)));
        MuseNet { config, exclusive, interactive, decoders, spatial, noise }
    }

    /// The configuration.
    pub fn config(&self) -> &MuseNetConfig {
        &self.config
    }

    /// All trainable parameters.
    pub fn params(&self) -> Vec<ParamRef> {
        let mut p: Vec<ParamRef> = Vec::new();
        for e in &self.exclusive {
            p.extend(e.params());
        }
        match &self.interactive {
            InteractivePath::Multivariate { encoder, simplex, duplex } => {
                p.extend(encoder.params());
                if let Some(sx) = simplex {
                    for e in sx {
                        p.extend(e.params());
                    }
                }
                if let Some(dx) = duplex {
                    for e in dx {
                        p.extend(e.params());
                    }
                }
            }
            InteractivePath::Pairwise { encoders } => {
                for e in encoders {
                    p.extend(e.inner.params());
                }
            }
        }
        for d in &self.decoders {
            p.extend(d.params());
        }
        match &self.spatial {
            SpatialHead::ResPlus(r) => p.extend(r.params()),
            SpatialHead::Pointwise(h) => p.extend(h.params()),
        }
        p
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Save the model's parameters to a checkpoint file.
    pub fn save(&self, path: &std::path::Path) -> Result<(), muse_nn::CheckpointError> {
        muse_nn::save_params(path, &self.params())
    }

    /// Load parameters from a checkpoint produced by [`MuseNet::save`] on a
    /// model with the same configuration.
    pub fn load(&self, path: &std::path::Path) -> Result<(), muse_nn::CheckpointError> {
        muse_nn::load_params(path, &self.params())
    }

    /// Save parameters with the model's JSON config embedded as checkpoint
    /// metadata, making the file self-describing: a serving process can
    /// rebuild the architecture from the file alone
    /// ([`MuseNet::from_checkpoint`]).
    pub fn save_with_config(&self, path: &std::path::Path) -> Result<(), muse_nn::CheckpointError> {
        muse_nn::save_params_with_meta(path, &self.params(), Some(&self.config.to_json().render()))
    }

    /// Reconstruct a model from a self-describing checkpoint: parse the
    /// embedded config, build the architecture, load the weights.
    pub fn from_checkpoint(path: &std::path::Path) -> Result<MuseNet, muse_nn::CheckpointError> {
        use muse_nn::CheckpointError;
        let ckpt = muse_nn::load_checkpoint_full(path)?;
        let meta = ckpt.meta.as_deref().ok_or_else(|| {
            CheckpointError::Format(
                "checkpoint has no embedded model config (save it with MuseNet::save_with_config \
                 or muse-eval --save-checkpoint)"
                    .into(),
            )
        })?;
        let json = obs::json::parse(meta)
            .map_err(|e| CheckpointError::Format(format!("checkpoint metadata is not valid JSON: {e}")))?;
        let config = MuseNetConfig::from_json(&json).map_err(CheckpointError::Format)?;
        config.validate();
        let model = MuseNet::new(config);
        muse_nn::apply_checkpoint(&ckpt.entries, &model.params())?;
        Ok(model)
    }

    // ------------------------------------------------------------- training

    /// Build the full training graph for one (scaled) batch.
    pub fn train_graph<'t>(&self, s: &Session<'t>, batch: &Batch) -> ForwardPass<'t> {
        self.graph(s, &batch.closeness, &batch.period, &batch.trend, Some(&batch.target), true)
    }

    /// Build an evaluation graph (no sampling noise) for a batch; the target
    /// is still used to report loss terms.
    pub fn eval_graph<'t>(&self, s: &Session<'t>, batch: &Batch) -> ForwardPass<'t> {
        self.graph(s, &batch.closeness, &batch.period, &batch.trend, Some(&batch.target), false)
    }

    fn graph<'t>(
        &self,
        s: &Session<'t>,
        closeness: &Tensor,
        period: &Tensor,
        trend: &Tensor,
        target: Option<&Tensor>,
        train: bool,
    ) -> ForwardPass<'t> {
        let weights =
            ObjectiveWeights::for_variant(self.config.variant, self.config.lambda, self.config.pull_cap);
        let inputs = [closeness, period, trend];
        let c = s.input(closeness.clone());
        let p = s.input(period.clone());
        let t = s.input(trend.clone());
        // Most recent frame of each sub-series (last 2 channels), for the
        // per-cell Hadamard fusion in the spatial head.
        let last_frame = |x: &Tensor| -> Tensor {
            let ch = x.dims()[1];
            x.split(1, &[ch - 2, 2]).pop().expect("two chunks")
        };
        let skips = [s.input(last_frame(closeness)), s.input(last_frame(period)), s.input(last_frame(trend))];

        // Exclusive branches.
        let enc: Vec<EncoderOutput<'t>> = {
            let _span = obs::span("model.encode");
            vec![
                {
                    let _b = obs::span("closeness");
                    self.exclusive[0].forward(s, c)
                },
                {
                    let _b = obs::span("period");
                    self.exclusive[1].forward(s, p)
                },
                {
                    let _b = obs::span("trend");
                    self.exclusive[2].forward(s, t)
                },
            ]
        };

        let mut rng = self.noise.borrow_mut();
        let sample_z = |mu: &Var<'t>, lv: &Var<'t>, rng: &mut SeededRng| -> Var<'t> {
            if train {
                reparameterize(mu, lv, rng)
            } else {
                *mu
            }
        };

        let z_exclusive: Vec<Var<'t>> = enc.iter().map(|e| sample_z(&e.mu, &e.logvar, &mut rng)).collect();
        let kl_exclusive_var = kl_to_standard_normal(&enc[0].mu, &enc[0].logvar)
            .add(&kl_to_standard_normal(&enc[1].mu, &enc[1].logvar))
            .add(&kl_to_standard_normal(&enc[2].mu, &enc[2].logvar));

        // Interactive pathway, reconstruction inputs, spatial stack, pulling.
        let (kl_interactive_var, recon_var, spatial_stack, pull_var) = match &self.interactive {
            InteractivePath::Multivariate { encoder, simplex, duplex } => {
                let (inter, z_s, kl_s) = {
                    let _span = obs::span("model.interactive");
                    let feats = Var::concat(&[enc[0].feature, enc[1].feature, enc[2].feature], 1);
                    let inter = encoder.forward(s, feats);
                    let z_s = sample_z(&inter.mu, &inter.logvar, &mut rng);
                    let kl_s = kl_to_standard_normal(&inter.mu, &inter.logvar);
                    (inter, z_s, kl_s)
                };

                // Reconstruction (semantic-pushing, Eq. 28).
                let _recon_span = obs::span("model.reconstruct");
                let mut recon =
                    sse_per_sample(&self.decoders[0].forward_pair(s, z_exclusive[0], z_s), inputs[0]);
                recon = recon
                    .add(&sse_per_sample(&self.decoders[1].forward_pair(s, z_exclusive[1], z_s), inputs[1]));
                recon = recon
                    .add(&sse_per_sample(&self.decoders[2].forward_pair(s, z_exclusive[2], z_s), inputs[2]));
                drop(_recon_span);

                let stack = Var::concat(&[enc[0].feature, enc[1].feature, enc[2].feature, inter.feature], 1);

                // Semantic-pulling (Eq. 29).
                let _pull_span = obs::span("model.pulling");
                let pull = match (simplex, duplex) {
                    (Some(sx), Some(dx)) => {
                        // Each branch's simplex posterior g_τ(z|i) appears in
                        // two of the three pair terms — run the three simplex
                        // forwards once instead of six times.
                        let g: Vec<(Var<'t>, Var<'t>)> =
                            (0..3).map(|b| sx[b].forward(s, enc[b].feature)).collect();
                        let mut acc: Option<Var<'t>> = None;
                        for (pair_idx, (bi, bj)) in Branch::pairs().iter().enumerate() {
                            let fi = enc[bi.index()].feature;
                            let fj = enc[bj.index()].feature;
                            let (mu_d, lv_d) = dx[pair_idx].forward(s, Var::concat(&[fi, fj], 1));
                            let (mu_gi, lv_gi) = g[bi.index()];
                            let (mu_gj, lv_gj) = g[bj.index()];
                            // Minimized: + KL(d‖g_i) + KL(d‖g_j) − sat(KL(r_s‖d)).
                            let term = kl_between_fused(&mu_d, &lv_d, &mu_gi, &lv_gi)
                                .add(&kl_between_fused(&mu_d, &lv_d, &mu_gj, &lv_gj))
                                .sub(&saturate(
                                    kl_between_fused(&inter.mu, &inter.logvar, &mu_d, &lv_d),
                                    weights.pull_cap,
                                ));
                            acc = Some(match acc {
                                Some(a) => a.add(&term),
                                None => term,
                            });
                        }
                        Some(acc.expect("three pairs"))
                    }
                    _ => None,
                };
                drop(_pull_span);
                (kl_s, recon, stack, pull)
            }
            InteractivePath::Pairwise { encoders } => {
                let _span = obs::span("model.interactive");
                // w/o-MultiDisentangle: three pairwise interactive paths.
                let mut pair_out = Vec::with_capacity(3);
                for (pair_idx, (bi, bj)) in Branch::pairs().iter().enumerate() {
                    let feats = Var::concat(&[enc[bi.index()].feature, enc[bj.index()].feature], 1);
                    pair_out.push(encoders[pair_idx].inner.forward(s, feats));
                }
                let z_pair: Vec<Var<'t>> =
                    pair_out.iter().map(|o| sample_z(&o.mu, &o.logvar, &mut rng)).collect();
                let kl_s = kl_to_standard_normal(&pair_out[0].mu, &pair_out[0].logvar)
                    .add(&kl_to_standard_normal(&pair_out[1].mu, &pair_out[1].logvar))
                    .add(&kl_to_standard_normal(&pair_out[2].mu, &pair_out[2].logvar));

                // Branch i reconstructs from z^i plus the two pairwise
                // latents that involve i: C → (CP, CT), P → (CP, PT),
                // T → (CT, PT).
                let pair_for = |branch: usize| -> [usize; 2] {
                    match branch {
                        0 => [0, 1],
                        1 => [0, 2],
                        _ => [1, 2],
                    }
                };
                let mut recon: Option<Var<'t>> = None;
                for b in 0..3 {
                    let [pa, pb] = pair_for(b);
                    let z = Var::concat(&[z_exclusive[b], z_pair[pa], z_pair[pb]], 1);
                    let term = sse_per_sample(&self.decoders[b].forward(s, z), inputs[b]);
                    recon = Some(match recon {
                        Some(r) => r.add(&term),
                        None => term,
                    });
                }
                let stack = Var::concat(
                    &[
                        enc[0].feature,
                        enc[1].feature,
                        enc[2].feature,
                        pair_out[0].feature,
                        pair_out[1].feature,
                        pair_out[2].feature,
                    ],
                    1,
                );
                (kl_s, recon.expect("three branches"), stack, None)
            }
        };
        drop(rng);

        // Spatial head with Hadamard-fused recent frames.
        let prediction = {
            let _span = obs::span("model.spatial");
            match &self.spatial {
                SpatialHead::ResPlus(r) => r.forward(s, spatial_stack, &skips),
                SpatialHead::Pointwise(h) => h.forward(s, spatial_stack, &skips),
            }
        };

        // Regression (Eq. 30).
        let reg_var = match target {
            Some(y) => sse_per_sample(&prediction, y),
            None => s.input(Tensor::scalar(0.0)),
        };

        // Weighted total (minimization form of Eq. 26).
        let mut total = kl_exclusive_var
            .mul_scalar(weights.exclusive)
            .add(&kl_interactive_var)
            .add(&recon_var.mul_scalar(weights.exclusive))
            .add(&reg_var);
        let pulling_value = if let Some(pull) = pull_var {
            total = total.add(&pull.mul_scalar(weights.pulling));
            pull.item()
        } else {
            0.0
        };

        let terms = LossTerms {
            kl_exclusive: kl_exclusive_var.item(),
            kl_interactive: kl_interactive_var.item(),
            reconstruction: recon_var.item(),
            pulling: pulling_value,
            regression: reg_var.item(),
            total: total.item(),
        };
        ForwardPass { prediction, loss: total, terms }
    }

    // ------------------------------------------------------------ inference

    /// Predict the (scaled) next-step flows for a batch: `[B, 2, H, W]`.
    ///
    /// The prediction path is deterministic — it uses the representation
    /// maps, not the sampled latents.
    pub fn predict(&self, batch: &Batch) -> Tensor {
        self.predict_raw(&batch.closeness, &batch.period, &batch.trend)
    }

    /// Predict from raw sub-series tensors.
    pub fn predict_raw(&self, closeness: &Tensor, period: &Tensor, trend: &Tensor) -> Tensor {
        let tape = Tape::forward_only();
        let s = Session::new(&tape);
        self.infer_raw(&s, closeness, period, trend).prediction
    }

    /// Forward-only serving pass: the deterministic prediction plus the
    /// per-branch posterior-mean norms, skipping the training-only graph
    /// (decoders, reconstruction, pulling, loss terms). Bit-identical to
    /// the prediction of [`MuseNet::eval_graph`] — the omitted branches
    /// never feed the prediction path.
    ///
    /// The caller owns the session; a long-lived server hoists one
    /// [`Tape::forward_only`] tape + session and `reset`s both between
    /// requests so steady-state inference runs out of the tensor arena.
    pub fn infer_raw<'t>(
        &self,
        s: &Session<'t>,
        closeness: &Tensor,
        period: &Tensor,
        trend: &Tensor,
    ) -> InferenceOutput {
        let _span = obs::span("model.infer");
        let c = s.input(closeness.clone());
        let p = s.input(period.clone());
        let t = s.input(trend.clone());
        let last_frame = |x: &Tensor| -> Tensor {
            let ch = x.dims()[1];
            x.split(1, &[ch - 2, 2]).pop().expect("two chunks")
        };
        let skips = [s.input(last_frame(closeness)), s.input(last_frame(period)), s.input(last_frame(trend))];
        let enc = [
            self.exclusive[0].forward(s, c),
            self.exclusive[1].forward(s, p),
            self.exclusive[2].forward(s, t),
        ];
        let exclusive_mu_norms = [0, 1, 2].map(|i| enc[i].mu.with_value(|mu: &Tensor| mu.norm()));
        let (spatial_stack, interactive_mu_norm) = match &self.interactive {
            InteractivePath::Multivariate { encoder, .. } => {
                let feats = Var::concat(&[enc[0].feature, enc[1].feature, enc[2].feature], 1);
                let inter = encoder.forward(s, feats);
                let stack = Var::concat(&[enc[0].feature, enc[1].feature, enc[2].feature, inter.feature], 1);
                (stack, inter.mu.with_value(|mu: &Tensor| mu.norm()))
            }
            InteractivePath::Pairwise { encoders } => {
                let mut feats = vec![enc[0].feature, enc[1].feature, enc[2].feature];
                let mut sq_norm = 0.0f32;
                for (pair_idx, (bi, bj)) in Branch::pairs().iter().enumerate() {
                    let pair_feats = Var::concat(&[enc[bi.index()].feature, enc[bj.index()].feature], 1);
                    let out = encoders[pair_idx].inner.forward(s, pair_feats);
                    feats.push(out.feature);
                    // ‖concat(mus)‖ = sqrt(Σ‖mu_i‖²), without the concat.
                    sq_norm += out.mu.with_value(|mu: &Tensor| {
                        let n = mu.norm();
                        n * n
                    });
                }
                (Var::concat(&feats, 1), sq_norm.sqrt())
            }
        };
        let prediction = {
            let _span = obs::span("model.spatial");
            match &self.spatial {
                SpatialHead::ResPlus(r) => r.forward(s, spatial_stack, &skips),
                SpatialHead::Pointwise(h) => h.forward(s, spatial_stack, &skips),
            }
        };
        InferenceOutput { prediction: prediction.value(), exclusive_mu_norms, interactive_mu_norm }
    }

    /// Autoregressive multi-step forecast.
    ///
    /// For each base index `n`, the model is rolled forward `horizons`
    /// steps: predicted frames replace the unavailable future frames inside
    /// the closeness window, while the period/trend windows remain ground
    /// truth (their lags are ≥ one day, beyond any reasonable horizon).
    /// Returns one `[B, 2, H, W]` tensor per horizon.
    pub fn predict_multi_step(
        &self,
        flows: &FlowSeries,
        spec: &SubSeriesSpec,
        indices: &[usize],
        horizons: usize,
    ) -> Vec<Tensor> {
        assert!(horizons >= 1, "need at least one horizon");
        assert!(spec.intervals_per_day >= horizons, "rollout assumes horizons shorter than one day");
        let mut per_horizon: Vec<Vec<Tensor>> = vec![Vec::with_capacity(indices.len()); horizons];
        #[allow(clippy::needless_range_loop)]
        for &n in indices {
            let mut predicted: Vec<Tensor> = Vec::with_capacity(horizons); // frames n, n+1, ...
            for h in 0..horizons {
                let target_idx = n + h;
                // Closeness frames: target_idx - lag; use predictions for
                // frames >= n.
                let mut c_frames: Vec<Tensor> = Vec::with_capacity(spec.lc);
                for lag in spec.closeness_lags() {
                    let idx = target_idx - lag;
                    if idx >= n {
                        c_frames.push(predicted[idx - n].clone());
                    } else {
                        c_frames.push(flows.frame(idx));
                    }
                }
                let c_refs: Vec<&Tensor> = c_frames.iter().collect();
                let c = Tensor::concat(&c_refs, 0).unsqueeze(0);
                // Period/trend lags are ≥ f ≥ horizons, so they never touch
                // predicted frames; take them at the true target index.
                let p_frames: Vec<Tensor> =
                    spec.period_lags().iter().map(|&lag| flows.frame(target_idx - lag)).collect();
                let p_refs: Vec<&Tensor> = p_frames.iter().collect();
                let p = Tensor::concat(&p_refs, 0).unsqueeze(0);
                let t_frames: Vec<Tensor> =
                    spec.trend_lags().iter().map(|&lag| flows.frame(target_idx - lag)).collect();
                let t_refs: Vec<&Tensor> = t_frames.iter().collect();
                let t = Tensor::concat(&t_refs, 0).unsqueeze(0);
                let pred = self.predict_raw(&c, &p, &t); // [1, 2, H, W]
                let frame = pred.index_axis0(0);
                predicted.push(frame.clone());
                per_horizon[h].push(frame);
            }
        }
        per_horizon
            .into_iter()
            .map(|frames| {
                let refs: Vec<&Tensor> = frames.iter().collect();
                Tensor::stack(&refs)
            })
            .collect()
    }

    // ------------------------------------------------------------- analysis

    /// Extract deterministic representations for a batch (RQ3–RQ5).
    pub fn representations(&self, batch: &Batch) -> Representations {
        let tape = Tape::new();
        let s = Session::new(&tape);
        let c = s.input(batch.closeness.clone());
        let p = s.input(batch.period.clone());
        let t = s.input(batch.trend.clone());
        let enc = [
            self.exclusive[0].forward(&s, c),
            self.exclusive[1].forward(&s, p),
            self.exclusive[2].forward(&s, t),
        ];
        let pooled = |map: &Tensor| -> Tensor {
            // [B, d, H, W] → [B, d] by spatial mean.
            let (b, d) = (map.dims()[0], map.dims()[1]);
            let cells = map.dims()[2] * map.dims()[3];
            map.reshaped(&[b, d, cells]).mean_axis(2)
        };
        let exclusive_maps: Vec<Tensor> = enc.iter().map(|e| e.feature.value()).collect();
        let exclusive_mu: Vec<Tensor> = enc.iter().map(|e| e.mu.value()).collect();

        let (interactive_map, interactive_mu) = match &self.interactive {
            InteractivePath::Multivariate { encoder, .. } => {
                let feats = Var::concat(&[enc[0].feature, enc[1].feature, enc[2].feature], 1);
                let inter = encoder.forward(&s, feats);
                (inter.feature.value(), inter.mu.value())
            }
            InteractivePath::Pairwise { encoders } => {
                let mut maps = Vec::with_capacity(3);
                let mut mus = Vec::with_capacity(3);
                for (pair_idx, (bi, bj)) in Branch::pairs().iter().enumerate() {
                    let feats = Var::concat(&[enc[bi.index()].feature, enc[bj.index()].feature], 1);
                    let out = encoders[pair_idx].inner.forward(&s, feats);
                    maps.push(out.feature.value());
                    mus.push(out.mu.value());
                }
                // Mean of the pairwise maps; concatenated posterior means.
                let mean_map = maps[0].add(&maps[1]).add(&maps[2]).mul_scalar(1.0 / 3.0);
                let mu_refs: Vec<&Tensor> = mus.iter().collect();
                (mean_map, Tensor::concat(&mu_refs, 1))
            }
        };

        Representations {
            exclusive: [pooled(&exclusive_maps[0]), pooled(&exclusive_maps[1]), pooled(&exclusive_maps[2])],
            interactive: pooled(&interactive_map),
            exclusive_mu: [exclusive_mu[0].clone(), exclusive_mu[1].clone(), exclusive_mu[2].clone()],
            interactive_mu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ablation::AblationVariant;
    use muse_traffic::subseries::batch;
    use muse_traffic::{GridMap, SubSeriesSpec};

    fn tiny_config(variant: AblationVariant) -> MuseNetConfig {
        let spec = SubSeriesSpec { lc: 2, lp: 2, lt: 1, intervals_per_day: 4, trend_days: 7 };
        let mut cfg = MuseNetConfig::cpu_profile(GridMap::new(3, 4), spec);
        cfg.d = 4;
        cfg.k = 8;
        cfg.variant = variant;
        cfg
    }

    fn tiny_flows() -> FlowSeries {
        let grid = GridMap::new(3, 4);
        let t = 40;
        let mut rng = SeededRng::new(11);
        FlowSeries::from_tensor(grid, Tensor::rand_uniform(&mut rng, &[t, 2, 3, 4], -1.0, 1.0))
    }

    fn tiny_batch(cfg: &MuseNetConfig) -> Batch {
        let flows = tiny_flows();
        batch(&flows, &cfg.spec, &[30, 31, 35])
    }

    #[test]
    fn forward_shapes_full_model() {
        let cfg = tiny_config(AblationVariant::Full);
        let model = MuseNet::new(cfg.clone());
        let b = tiny_batch(&cfg);
        let tape = Tape::new();
        let s = Session::new(&tape);
        let pass = model.train_graph(&s, &b);
        assert_eq!(pass.prediction.dims(), vec![3, 2, 3, 4]);
        assert!(pass.terms.is_finite(), "{:?}", pass.terms);
        assert!(pass.terms.kl_exclusive >= -1e-4);
        assert!(pass.terms.kl_interactive >= -1e-4);
        assert!(pass.terms.reconstruction >= 0.0);
        assert!(pass.terms.regression >= 0.0);
    }

    #[test]
    fn every_variant_builds_and_runs() {
        for variant in AblationVariant::all() {
            let cfg = tiny_config(variant);
            let model = MuseNet::new(cfg.clone());
            let b = tiny_batch(&cfg);
            let tape = Tape::new();
            let s = Session::new(&tape);
            let pass = model.train_graph(&s, &b);
            assert!(pass.terms.is_finite(), "{variant:?}: {:?}", pass.terms);
            // Pulling only active for variants that use it.
            if !variant.uses_pulling() {
                assert_eq!(pass.terms.pulling, 0.0, "{variant:?}");
            }
            // Gradients flow to every parameter group.
            s.backward(pass.loss);
            let with_grad = model.params().iter().filter(|p| p.grad().norm() > 0.0).count();
            assert!(
                with_grad * 10 >= model.params().len() * 8,
                "{variant:?}: only {with_grad}/{} params got gradients",
                model.params().len()
            );
        }
    }

    #[test]
    fn eval_graph_is_deterministic() {
        let cfg = tiny_config(AblationVariant::Full);
        let model = MuseNet::new(cfg.clone());
        let b = tiny_batch(&cfg);
        let run = || {
            let tape = Tape::new();
            let s = Session::new(&tape);
            model.eval_graph(&s, &b).prediction.value()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn predict_matches_eval_graph_prediction() {
        let cfg = tiny_config(AblationVariant::Full);
        let model = MuseNet::new(cfg.clone());
        let b = tiny_batch(&cfg);
        let tape = Tape::new();
        let s = Session::new(&tape);
        let via_graph = model.eval_graph(&s, &b).prediction.value();
        let via_predict = model.predict(&b);
        assert!(via_graph.approx_eq(&via_predict, 1e-5));
    }

    #[test]
    fn prediction_in_tanh_range() {
        let cfg = tiny_config(AblationVariant::Full);
        let model = MuseNet::new(cfg.clone());
        let b = tiny_batch(&cfg);
        let pred = model.predict(&b);
        assert!(pred.max() <= 1.0 && pred.min() >= -1.0);
    }

    #[test]
    fn multi_step_rollout_shapes() {
        let cfg = tiny_config(AblationVariant::Full);
        let model = MuseNet::new(cfg.clone());
        let flows = tiny_flows();
        let preds = model.predict_multi_step(&flows, &cfg.spec, &[30, 32], 3);
        assert_eq!(preds.len(), 3);
        for p in &preds {
            assert_eq!(p.dims(), &[2, 2, 3, 4]);
            assert!(p.all_finite());
        }
    }

    #[test]
    fn representations_shapes() {
        for variant in [AblationVariant::Full, AblationVariant::WithoutMultiDisentangle] {
            let cfg = tiny_config(variant);
            let model = MuseNet::new(cfg.clone());
            let b = tiny_batch(&cfg);
            let reps = model.representations(&b);
            for e in &reps.exclusive {
                assert_eq!(e.dims(), &[3, cfg.d]);
            }
            assert_eq!(reps.interactive.dims(), &[3, cfg.d]);
            for m in &reps.exclusive_mu {
                assert_eq!(m.dims(), &[3, cfg.exclusive_dim()]);
            }
        }
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let cfg = tiny_config(AblationVariant::Full);
        let model = MuseNet::new(cfg.clone());
        let b = tiny_batch(&cfg);
        let before = model.predict(&b);
        let mut path = std::env::temp_dir();
        path.push(format!("musenet-ckpt-{}.bin", std::process::id()));
        model.save(&path).unwrap();
        // A fresh model with a different seed predicts differently…
        let mut cfg2 = cfg.clone();
        cfg2.seed = 999;
        let other = MuseNet::new(cfg2);
        assert!(other.predict(&b).max_abs_diff(&before) > 1e-6);
        // …until the checkpoint is loaded.
        other.load(&path).unwrap();
        assert!(other.predict(&b).approx_eq(&before, 1e-6));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn infer_raw_is_bit_identical_to_eval_graph_prediction() {
        for variant in AblationVariant::all() {
            let cfg = tiny_config(variant);
            let model = MuseNet::new(cfg.clone());
            let b = tiny_batch(&cfg);
            let tape = Tape::new();
            let s = Session::new(&tape);
            let via_graph = model.eval_graph(&s, &b).prediction.value();

            let infer_tape = Tape::forward_only();
            let infer_s = Session::new(&infer_tape);
            let out = model.infer_raw(&infer_s, &b.closeness, &b.period, &b.trend);
            assert_eq!(out.prediction.as_slice(), via_graph.as_slice(), "{variant:?}");
            assert!(out.exclusive_mu_norms.iter().all(|n| n.is_finite()), "{variant:?}");
            assert!(out.interactive_mu_norm.is_finite(), "{variant:?}");

            // And a reused (reset) session reproduces the same bits.
            infer_tape.reset();
            infer_s.reset();
            let again = model.infer_raw(&infer_s, &b.closeness, &b.period, &b.trend);
            assert_eq!(again.prediction.as_slice(), via_graph.as_slice(), "{variant:?} after reset");
            assert_eq!(again.exclusive_mu_norms, out.exclusive_mu_norms, "{variant:?} after reset");
            assert_eq!(again.interactive_mu_norm, out.interactive_mu_norm, "{variant:?} after reset");
        }
    }

    #[test]
    fn from_checkpoint_rebuilds_the_exact_model() {
        let mut cfg = tiny_config(AblationVariant::Full);
        cfg.seed = 41;
        let model = MuseNet::new(cfg.clone());
        let b = tiny_batch(&cfg);
        let before = model.predict(&b);
        let mut path = std::env::temp_dir();
        path.push(format!("musenet-ckpt-meta-{}.bin", std::process::id()));
        model.save_with_config(&path).unwrap();
        let rebuilt = MuseNet::from_checkpoint(&path).unwrap();
        assert_eq!(rebuilt.config().grid, cfg.grid);
        assert_eq!(rebuilt.config().seed, cfg.seed);
        assert_eq!(rebuilt.predict(&b).as_slice(), before.as_slice());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn from_checkpoint_requires_embedded_config() {
        let cfg = tiny_config(AblationVariant::Full);
        let model = MuseNet::new(cfg);
        let mut path = std::env::temp_dir();
        path.push(format!("musenet-ckpt-nometa-{}.bin", std::process::id()));
        model.save(&path).unwrap(); // no metadata section
        let Err(err) = MuseNet::from_checkpoint(&path) else {
            panic!("config-less checkpoint must not self-construct");
        };
        assert!(format!("{err}").contains("no embedded model config"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_different_variant() {
        let cfg = tiny_config(AblationVariant::Full);
        let model = MuseNet::new(cfg.clone());
        let mut path = std::env::temp_dir();
        path.push(format!("musenet-ckpt-var-{}.bin", std::process::id()));
        model.save(&path).unwrap();
        let ablated = MuseNet::new(tiny_config(AblationVariant::WithoutSemanticPulling));
        assert!(ablated.load(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn param_count_reasonable_and_variant_dependent() {
        let full = MuseNet::new(tiny_config(AblationVariant::Full));
        let no_pull = MuseNet::new(tiny_config(AblationVariant::WithoutSemanticPulling));
        // Dropping the simplex/duplex encoders removes parameters.
        assert!(full.param_count() > no_pull.param_count());
        assert!(full.param_count() > 1000);
    }

    #[test]
    fn one_training_step_reduces_loss() {
        let cfg = tiny_config(AblationVariant::Full);
        let model = MuseNet::new(cfg.clone());
        let b = tiny_batch(&cfg);
        let mut opt = muse_nn::Adam::with_defaults(model.params(), 1e-3);
        let mut losses = Vec::new();
        for _ in 0..15 {
            let tape = Tape::new();
            let s = Session::new(&tape);
            let pass = model.train_graph(&s, &b);
            losses.push(pass.terms.total);
            s.backward(pass.loss);
            use muse_nn::Optimizer;
            opt.step();
            opt.zero_grad();
        }
        let first = losses[0];
        let last = *losses.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        assert!(last.is_finite());
    }
}
