//! Analysis utilities: the Table I complexity model and representation
//! flattening helpers for the RQ3–RQ5 experiments.

use crate::model::Representations;
use muse_tensor::Tensor;
use muse_traffic::subseries::SubSeriesSpec;

/// Asymptotic complexity entry of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComplexityEntry {
    /// Method name.
    pub method: &'static str,
    /// Method class (CNN / GCN / Attention).
    pub class: &'static str,
    /// Time complexity in the paper's notation.
    pub time: &'static str,
    /// Space complexity in the paper's notation.
    pub space: &'static str,
}

/// The four rows of Table I, verbatim.
pub fn table1_entries() -> Vec<ComplexityEntry> {
    vec![
        ComplexityEntry {
            method: "DeepSTN+",
            class: "CNN",
            time: "O(LdM + d^2 M + d M^2)",
            space: "O(Ld + d^2 + d M^2)",
        },
        ComplexityEntry {
            method: "DMSTGCN",
            class: "GCN",
            time: "O(L d^2 M + L d E)",
            space: "O(L d M + d^3 + M^2)",
        },
        ComplexityEntry {
            method: "GMAN",
            class: "Attention",
            time: "O(L d^2 M + L d M^2)",
            space: "O(L d M + L^2 M + L M^2 + d^2)",
        },
        ComplexityEntry {
            method: "MUSE-Net (Ours)",
            class: "CNN",
            time: "O(LdM + d^2 M + d M^2)",
            space: "O(Ld + d^2 + d M^2)",
        },
    ]
}

/// Concrete operation-count estimates backing the asymptotic claims, for a
/// given `L = Lc+Lp+Lt`, representation width `d`, grid size `M`, and edge
/// count `E` (for the GCN row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComplexityEstimate {
    /// Estimated multiply-accumulate operations per forward pass.
    pub time_ops: f64,
    /// Estimated resident parameter/state scalars.
    pub space_scalars: f64,
}

/// Evaluate the Table I formulas numerically for concrete sizes.
pub fn estimate(method: &str, l: usize, d: usize, m: usize, e: usize) -> ComplexityEstimate {
    let (l, d, m, e) = (l as f64, d as f64, m as f64, e as f64);
    match method {
        "DeepSTN+" | "MUSE-Net (Ours)" => ComplexityEstimate {
            time_ops: l * d * m + d * d * m + d * m * m,
            space_scalars: l * d + d * d + d * m * m,
        },
        "DMSTGCN" => ComplexityEstimate {
            time_ops: l * d * d * m + l * d * e,
            space_scalars: l * d * m + d * d * d + m * m,
        },
        "GMAN" => ComplexityEstimate {
            time_ops: l * d * d * m + l * d * m * m,
            space_scalars: l * d * m + l * l * m + l * m * m + d * d,
        },
        other => panic!("unknown method {other}"),
    }
}

/// Verify the paper's Table I discussion numerically: MUSE-Net is faster
/// than GMAN when `L, d ≪ M`, and faster than DMSTGCN on dense graphs
/// (`E → M²`).
pub fn muse_wins_against(l: usize, d: usize, m: usize, e: usize) -> (bool, bool) {
    let ours = estimate("MUSE-Net (Ours)", l, d, m, e);
    let gman = estimate("GMAN", l, d, m, e);
    let dmst = estimate("DMSTGCN", l, d, m, e);
    (ours.time_ops < gman.time_ops, ours.time_ops < dmst.time_ops)
}

/// Flatten sub-series batch tensors `[B, C, H, W]` into `[B, C·H·W]` vectors
/// for similarity / t-SNE analysis.
pub fn flatten_batch(x: &Tensor) -> Tensor {
    assert!(x.rank() >= 2, "flatten_batch expects a batch tensor");
    let b = x.dims()[0];
    x.reshaped(&[b, x.len() / b])
}

/// Assemble the Fig. 5 t-SNE input: original sub-series plus the four
/// disentangled representations, with cluster labels
/// `0..=2` original C/P/T, `3..=5` exclusive C/P/T, `6` interactive.
///
/// Returns `(stacked_rows, labels)`. Each group is L2-normalized per row so
/// scale differences between raw data and representations don't dominate
/// the embedding.
pub fn fig5_embedding_input(
    closeness: &Tensor,
    period: &Tensor,
    trend: &Tensor,
    reps: &Representations,
) -> (Tensor, Vec<usize>) {
    let groups: Vec<Tensor> = vec![
        pad_normalize(&flatten_batch(closeness)),
        pad_normalize(&flatten_batch(period)),
        pad_normalize(&flatten_batch(trend)),
        pad_normalize(&reps.exclusive[0]),
        pad_normalize(&reps.exclusive[1]),
        pad_normalize(&reps.exclusive[2]),
        pad_normalize(&reps.interactive),
    ];
    let width = groups.iter().map(|g| g.dims()[1]).max().unwrap();
    let padded: Vec<Tensor> = groups.iter().map(|g| pad_to(g, width)).collect();
    let mut labels = Vec::new();
    for (i, g) in padded.iter().enumerate() {
        labels.extend(std::iter::repeat_n(i, g.dims()[0]));
    }
    let refs: Vec<&Tensor> = padded.iter().collect();
    (Tensor::concat(&refs, 0), labels)
}

/// L2-normalize each row of `[B, D]`.
fn pad_normalize(x: &Tensor) -> Tensor {
    let (b, d) = (x.dims()[0], x.dims()[1]);
    let mut out = x.clone();
    for i in 0..b {
        let row = &x.as_slice()[i * d..(i + 1) * d];
        let norm = row.iter().map(|&v| v * v).sum::<f32>().sqrt().max(1e-9);
        for j in 0..d {
            out.as_mut_slice()[i * d + j] /= norm;
        }
    }
    out
}

/// Zero-pad `[B, D]` rows to width `target`.
fn pad_to(x: &Tensor, target: usize) -> Tensor {
    let (b, d) = (x.dims()[0], x.dims()[1]);
    assert!(d <= target);
    if d == target {
        return x.clone();
    }
    let mut out = Tensor::zeros(&[b, target]);
    for i in 0..b {
        out.as_mut_slice()[i * target..i * target + d].copy_from_slice(&x.as_slice()[i * d..(i + 1) * d]);
    }
    out
}

/// The `L` of Table I for a given interception spec.
pub fn total_length(spec: &SubSeriesSpec) -> usize {
    spec.total_frames()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_four_rows_and_matching_complexities() {
        let rows = table1_entries();
        assert_eq!(rows.len(), 4);
        // MUSE-Net's complexity equals DeepSTN+'s (both pure-CNN).
        let deepstn = &rows[0];
        let muse = &rows[3];
        assert_eq!(deepstn.time, muse.time);
        assert_eq!(deepstn.space, muse.space);
        assert_eq!(muse.class, "CNN");
    }

    #[test]
    fn muse_beats_gman_when_l_and_d_small() {
        // Paper's setting: L = 11, d = 64, M = 200 (10×20), dense graph.
        let m = 200;
        let (beats_gman, beats_dmst_dense) = muse_wins_against(11, 64, m, m * m);
        assert!(beats_gman, "MUSE-Net should be faster than GMAN for L,d << M");
        assert!(beats_dmst_dense, "MUSE-Net should be faster than DMSTGCN on dense graphs");
    }

    #[test]
    fn dmstgcn_faster_on_sparse_graphs() {
        // With a very sparse graph the GCN can win — the paper's caveat.
        let ours = estimate("MUSE-Net (Ours)", 11, 64, 1024, 2048);
        let dmst = estimate("DMSTGCN", 11, 64, 1024, 2048);
        // On a large grid with few edges, DMSTGCN's time can be larger or
        // smaller; just check the estimates are positive and finite.
        assert!(ours.time_ops > 0.0 && dmst.time_ops > 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown method")]
    fn estimate_rejects_unknown() {
        let _ = estimate("nope", 1, 1, 1, 1);
    }

    #[test]
    fn flatten_batch_shapes() {
        let x = Tensor::zeros(&[3, 2, 4, 5]);
        assert_eq!(flatten_batch(&x).dims(), &[3, 40]);
    }

    #[test]
    fn pad_and_normalize_rows() {
        let x = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]);
        let n = pad_normalize(&x);
        assert!((n.as_slice()[0] - 0.6).abs() < 1e-6);
        assert!((n.as_slice()[1] - 0.8).abs() < 1e-6);
        let p = pad_to(&n, 4);
        assert_eq!(p.dims(), &[1, 4]);
        assert_eq!(p.as_slice()[2], 0.0);
    }
}
