#![warn(missing_docs)]

//! # musenet
//!
//! The paper's primary contribution: **MUSE-Net**, a multivariate
//! disentanglement network for traffic flow forecasting (Qin et al.,
//! ICDE 2024).
//!
//! MUSE-Net intercepts a traffic-flow series into closeness / period / trend
//! sub-series (hourly, daily, weekly — see [`muse_traffic::subseries`]) and
//! factorizes them into:
//!
//! * three **exclusive** representations `Z^C, Z^P, Z^T` — private,
//!   per-resolution patterns that absorb distribution shift, and
//! * one **interactive** representation `Z^S` — the pattern common to all
//!   resolutions, which bridges interaction shift.
//!
//! Training maximizes the derived lower bound of Eq. (26):
//! a VAE term ([`loss`], Eq. 27), a semantic-pushing reconstruction term
//! (Eq. 28), a semantic-pulling interaction-information term (Eq. 29), and
//! the forecasting regression (Eq. 30). The fused representations feed a
//! DeepSTN+-style [`resplus`] CNN that models spatial dependency.
//!
//! Entry points:
//! * [`MuseNet`] — the model; [`MuseNetConfig`] — hyper-parameters.
//! * [`Trainer`] — mini-batch Adam training with validation tracking.
//! * [`ablation::AblationVariant`] — the four §V-D ablations.
//! * [`analysis`] — representation extraction (RQ3–RQ5) and the Table I
//!   complexity model.

pub mod ablation;
pub mod analysis;
pub mod config;
pub mod decoder;
pub mod encoders;
pub mod loss;
pub mod model;
pub mod resplus;
pub mod trainer;
pub mod variational;

pub use ablation::AblationVariant;
pub use config::MuseNetConfig;
pub use loss::LossTerms;
pub use model::{InferenceOutput, MuseNet};
pub use trainer::{TrainReport, Trainer, TrainerOptions};
