//! Reconstructed decoder `q_θ(i | z^i, z^s)` (Eq. 28).
//!
//! A fully connected map from the concatenated exclusive and interactive
//! samples back to the (normalized) sub-series; under a unit-variance
//! Gaussian observation model its negative log-likelihood is the MSE used in
//! the merged objective.

use muse_autograd::Var;
use muse_nn::{Linear, ParamRef, Session};
use muse_tensor::init::SeededRng;

/// Decoder reconstructing one sub-series from `[z^i ; z^s]`.
#[derive(Debug)]
pub struct ReconstructedDecoder {
    fc: Linear,
    out_channels: usize,
    height: usize,
    width: usize,
}

impl ReconstructedDecoder {
    /// Decoder from `z_dim` latent inputs to a `[out_channels, H, W]`
    /// sub-series (values in `[-1, 1]` via tanh, matching the scaler).
    pub fn new(rng: &mut SeededRng, z_dim: usize, out_channels: usize, height: usize, width: usize) -> Self {
        ReconstructedDecoder {
            fc: Linear::new(rng, z_dim, out_channels * height * width),
            out_channels,
            height,
            width,
        }
    }

    /// Decode concatenated latents `[B, z_dim]` into `[B, C, H, W]`.
    pub fn forward<'t>(&self, s: &Session<'t>, z: Var<'t>) -> Var<'t> {
        let b = z.dims()[0];
        self.fc.forward(s, z).tanh().reshape(&[b, self.out_channels, self.height, self.width])
    }

    /// Decode from separate exclusive and interactive samples.
    pub fn forward_pair<'t>(&self, s: &Session<'t>, z_exclusive: Var<'t>, z_interactive: Var<'t>) -> Var<'t> {
        let z = Var::concat(&[z_exclusive, z_interactive], 1);
        self.forward(s, z)
    }

    /// All parameters.
    pub fn params(&self) -> Vec<ParamRef> {
        self.fc.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_autograd::Tape;
    use muse_tensor::Tensor;

    #[test]
    fn decoder_shapes_and_range() {
        let mut rng = SeededRng::new(1);
        let dec = ReconstructedDecoder::new(&mut rng, 6, 4, 3, 5);
        let tape = Tape::new();
        let s = Session::new(&tape);
        let z = s.input(Tensor::rand_uniform(&mut rng, &[2, 6], -2.0, 2.0));
        let out = dec.forward(&s, z);
        assert_eq!(out.dims(), vec![2, 4, 3, 5]);
        assert!(out.value().max() <= 1.0 && out.value().min() >= -1.0);
    }

    #[test]
    fn forward_pair_concatenates() {
        let mut rng = SeededRng::new(2);
        let dec = ReconstructedDecoder::new(&mut rng, 5, 2, 2, 2);
        let tape = Tape::new();
        let s = Session::new(&tape);
        let ze = s.input(Tensor::ones(&[1, 2]));
        let zs = s.input(Tensor::ones(&[1, 3]));
        let out = dec.forward_pair(&s, ze, zs);
        assert_eq!(out.dims(), vec![1, 2, 2, 2]);
    }

    #[test]
    fn decoder_is_trainable() {
        let mut rng = SeededRng::new(3);
        let dec = ReconstructedDecoder::new(&mut rng, 4, 2, 2, 2);
        let target = Tensor::rand_uniform(&mut rng, &[2, 2, 2, 2], -0.5, 0.5);
        let z_fixed = Tensor::rand_uniform(&mut rng, &[2, 4], -1.0, 1.0);
        let mut opt = muse_nn::Adam::with_defaults(dec.params(), 0.02);
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            let tape = Tape::new();
            let s = Session::new(&tape);
            let z = s.input(z_fixed.clone());
            let out = dec.forward(&s, z);
            let loss = muse_autograd::vae_ops::mse(&out, &target);
            last = loss.item();
            s.backward(loss);
            use muse_nn::Optimizer;
            opt.step();
            opt.zero_grad();
        }
        assert!(last < 0.02, "decoder failed to fit: {last}");
    }
}
