//! Exclusive and interactive encoders (§IV-E, Eq. 27).
//!
//! Each encoder follows the paper's description: a convolutional layer
//! produces the (spatial) representation, and a fully connected layer maps
//! it to the mean / log-variance of the corresponding posterior:
//!
//! * exclusive encoder — one per sub-series, posterior `r_φ(z^i | i)` of
//!   dimension `k/4`;
//! * interactive encoder — consumes the convolutional features of all three
//!   sub-series, posterior `r_φ(z^s | c, p, t)` of dimension `k`.

use muse_autograd::Var;
use muse_nn::{Conv2dLayer, Linear, ParamRef, Session};
use muse_tensor::init::SeededRng;
use muse_tensor::Conv2dSpec;

/// Bound applied to raw log-variances: `logvar = 4·tanh(raw)`.
///
/// Keeps posterior variances in `[e^-4, e^4]`, which stabilizes the KL terms
/// early in training without affecting the attainable optimum in practice.
const LOGVAR_SCALE: f32 = 4.0;

/// A fully connected distribution head: flattened features → `(μ, logσ²)`.
#[derive(Debug)]
pub struct DistributionHead {
    mu: Linear,
    logvar: Linear,
    in_features: usize,
}

impl DistributionHead {
    /// Head mapping `in_features` to a `dim`-dimensional Gaussian.
    pub fn new(rng: &mut SeededRng, in_features: usize, dim: usize) -> Self {
        DistributionHead {
            mu: Linear::new(rng, in_features, dim),
            logvar: Linear::new(rng, in_features, dim),
            in_features,
        }
    }

    /// Produce `(μ, logσ²)` from a `[B, in_features]` variable.
    pub fn forward<'t>(&self, s: &Session<'t>, flat: Var<'t>) -> (Var<'t>, Var<'t>) {
        debug_assert_eq!(flat.dims()[1], self.in_features, "distribution head width mismatch");
        let mu = self.mu.forward(s, flat);
        let logvar = self.logvar.forward(s, flat).tanh().mul_scalar(LOGVAR_SCALE);
        (mu, logvar)
    }

    /// Parameters of both linear maps.
    pub fn params(&self) -> Vec<ParamRef> {
        let mut p = self.mu.params();
        p.extend(self.logvar.params());
        p
    }
}

/// Output of an encoder: the spatial representation map plus the posterior.
pub struct EncoderOutput<'t> {
    /// Representation feature map `[B, d, H, W]`.
    pub feature: Var<'t>,
    /// Posterior mean `[B, dim]`.
    pub mu: Var<'t>,
    /// Posterior log-variance `[B, dim]`.
    pub logvar: Var<'t>,
}

/// Spatially pool a `[B, d, H, W]` representation map to the `[B, d]`
/// representation vector the distribution heads consume — the paper's
/// `d`-dimensional representation with `k`-dimensional sampled posterior.
pub fn spatial_pool<'t>(feature: Var<'t>) -> Var<'t> {
    let dims = feature.dims();
    let (b, d, cells) = (dims[0], dims[1], dims[2] * dims[3]);
    feature.reshape(&[b, d, cells]).mean_axis(2)
}

/// Exclusive encoder for one sub-series (closeness, period, or trend).
#[derive(Debug)]
pub struct ExclusiveEncoder {
    conv: Conv2dLayer,
    head: DistributionHead,
}

impl ExclusiveEncoder {
    /// Encoder from `in_channels` (= `2·L_i`) input maps to a `d`-channel
    /// representation and a `dist_dim`-dimensional posterior.
    pub fn new(
        rng: &mut SeededRng,
        in_channels: usize,
        d: usize,
        _grid_cells: usize,
        dist_dim: usize,
    ) -> Self {
        ExclusiveEncoder {
            conv: Conv2dLayer::new(rng, Conv2dSpec::same(in_channels, d, 3)),
            head: DistributionHead::new(rng, d, dist_dim),
        }
    }

    /// Encode a `[B, in_channels, H, W]` sub-series.
    pub fn forward<'t>(&self, s: &Session<'t>, x: Var<'t>) -> EncoderOutput<'t> {
        let feature = self.conv.forward(s, x).relu();
        let (mu, logvar) = self.head.forward(s, spatial_pool(feature));
        EncoderOutput { feature, mu, logvar }
    }

    /// All parameters.
    pub fn params(&self) -> Vec<ParamRef> {
        let mut p = self.conv.params();
        p.extend(self.head.params());
        p
    }
}

/// Interactive encoder: consumes the concatenated convolutional features of
/// all three sub-series and produces `Z^S` with posterior `r_φ(z^s|c,p,t)`.
#[derive(Debug)]
pub struct InteractiveEncoder {
    conv: Conv2dLayer,
    head: DistributionHead,
}

impl InteractiveEncoder {
    /// Encoder over `n_branches · d` concatenated feature channels.
    pub fn new(
        rng: &mut SeededRng,
        n_branches: usize,
        d: usize,
        _grid_cells: usize,
        dist_dim: usize,
    ) -> Self {
        InteractiveEncoder {
            conv: Conv2dLayer::new(rng, Conv2dSpec::same(n_branches * d, d, 3)),
            head: DistributionHead::new(rng, d, dist_dim),
        }
    }

    /// Encode concatenated branch features `[B, n·d, H, W]`.
    pub fn forward<'t>(&self, s: &Session<'t>, features: Var<'t>) -> EncoderOutput<'t> {
        let feature = self.conv.forward(s, features).relu();
        let (mu, logvar) = self.head.forward(s, spatial_pool(feature));
        EncoderOutput { feature, mu, logvar }
    }

    /// All parameters.
    pub fn params(&self) -> Vec<ParamRef> {
        let mut p = self.conv.params();
        p.extend(self.head.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_autograd::Tape;
    use muse_tensor::Tensor;

    #[test]
    fn exclusive_encoder_shapes() {
        let mut rng = SeededRng::new(1);
        let enc = ExclusiveEncoder::new(&mut rng, 6, 8, 12, 4);
        let tape = Tape::new();
        let s = Session::new(&tape);
        let x = s.input(Tensor::ones(&[2, 6, 3, 4]));
        let out = enc.forward(&s, x);
        assert_eq!(out.feature.dims(), vec![2, 8, 3, 4]);
        assert_eq!(out.mu.dims(), vec![2, 4]);
        assert_eq!(out.logvar.dims(), vec![2, 4]);
    }

    #[test]
    fn logvar_is_bounded() {
        let mut rng = SeededRng::new(2);
        let enc = ExclusiveEncoder::new(&mut rng, 2, 4, 6, 3);
        let tape = Tape::new();
        let s = Session::new(&tape);
        // Extreme inputs cannot blow up the log-variance.
        let x = s.input(Tensor::full(&[1, 2, 2, 3], 100.0));
        let out = enc.forward(&s, x);
        assert!(out.logvar.value().max() <= LOGVAR_SCALE + 1e-5);
        assert!(out.logvar.value().min() >= -LOGVAR_SCALE - 1e-5);
    }

    #[test]
    fn interactive_encoder_consumes_concat_features() {
        let mut rng = SeededRng::new(3);
        let d = 4;
        let enc = InteractiveEncoder::new(&mut rng, 3, d, 6, 8);
        let tape = Tape::new();
        let s = Session::new(&tape);
        let feats = s.input(Tensor::ones(&[2, 3 * d, 2, 3]));
        let out = enc.forward(&s, feats);
        assert_eq!(out.feature.dims(), vec![2, d, 2, 3]);
        assert_eq!(out.mu.dims(), vec![2, 8]);
    }

    #[test]
    fn gradients_reach_all_params() {
        let mut rng = SeededRng::new(4);
        let enc = ExclusiveEncoder::new(&mut rng, 2, 4, 4, 2);
        let tape = Tape::new();
        let s = Session::new(&tape);
        let x = s.input(Tensor::rand_uniform(&mut rng, &[2, 2, 2, 2], -1.0, 1.0));
        let out = enc.forward(&s, x);
        let loss = out.mu.square().sum().add(&out.logvar.square().sum()).add(&out.feature.square().sum());
        s.backward(loss);
        for p in enc.params() {
            assert!(p.grad().norm() > 0.0, "no gradient for {}", p.name());
        }
    }

    #[test]
    fn relu_feature_nonnegative() {
        let mut rng = SeededRng::new(5);
        let enc = ExclusiveEncoder::new(&mut rng, 2, 4, 4, 2);
        let tape = Tape::new();
        let s = Session::new(&tape);
        let x = s.input(Tensor::rand_uniform(&mut rng, &[1, 2, 2, 2], -1.0, 1.0));
        let out = enc.forward(&s, x);
        assert!(out.feature.value().min() >= 0.0);
    }
}
