//! Reductions: sums, means, extrema, and the `sum_to` used by broadcasting
//! backward passes.

use crate::arena;
use crate::ops::PAR_MIN_ELEMS;
use crate::shape::Shape;
use crate::simd;
use crate::tensor::Tensor;

/// Fixed chunk size for parallel reductions — a multiple of
/// [`simd::LANES`], so every full chunk has identical lane structure.
/// Partials are computed per chunk and folded **in chunk order**, so the
/// association — and therefore the result bits — depend only on the data
/// length, never on the thread count or SIMD level (each chunk partial is a
/// canonical lane-structured reduction from [`simd`]). Slices at or below
/// one chunk reduce in a single call.
const REDUCE_CHUNK: usize = 1 << 15;

/// Chunk-parallel, thread-count-invariant reduction: `part(range)` computes
/// the partial for one fixed-size chunk of `0..len`, and the partials are
/// folded in chunk order.
fn chunked_reduce(len: usize, part: impl Fn(std::ops::Range<usize>) -> f32 + Sync) -> f32 {
    if len <= REDUCE_CHUNK {
        return part(0..len);
    }
    let nchunks = len.div_ceil(REDUCE_CHUNK);
    let mut partials = vec![0.0f32; nchunks];
    let pref = &part;
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = partials
        .iter_mut()
        .enumerate()
        .map(|(ci, slot)| {
            Box::new(move || {
                let lo = ci * REDUCE_CHUNK;
                *slot = pref(lo..(lo + REDUCE_CHUNK).min(len));
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    muse_parallel::join_all(jobs);
    partials.into_iter().sum()
}

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        let s = self.as_slice();
        chunked_reduce(s.len(), |r| simd::sum(&s[r]))
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element. Panics on empty tensors.
    pub fn max(&self) -> f32 {
        assert!(!self.is_empty(), "max of empty tensor");
        self.as_slice().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element. Panics on empty tensors.
    pub fn min(&self) -> f32 {
        assert!(!self.is_empty(), "min of empty tensor");
        self.as_slice().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Population variance of all elements.
    pub fn variance(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        let s = self.as_slice();
        chunked_reduce(s.len(), |r| simd::sum_sq_dev(&s[r], m)) / self.len() as f32
    }

    /// Population standard deviation of all elements.
    pub fn std(&self) -> f32 {
        self.variance().sqrt()
    }

    /// Sum along `axis`, dropping that axis.
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        assert!(axis < self.rank(), "sum_axis {axis} out of range for rank {}", self.rank());
        let dims = self.dims();
        let outer: usize = dims[..axis].iter().product();
        let mid = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out = arena::take_zeroed(outer * inner);
        let src = self.as_slice();
        // Each output row `o` accumulates over ascending `m` no matter
        // which job owns it, so partitioning rows cannot change the bits.
        let reduce_rows = |o0: usize, chunk: &mut [f32]| {
            for (d, orow) in chunk.chunks_mut(inner).enumerate() {
                let o = o0 + d;
                for m in 0..mid {
                    let base = (o * mid + m) * inner;
                    for (acc, &v) in orow.iter_mut().zip(&src[base..base + inner]) {
                        *acc += v;
                    }
                }
            }
        };
        if inner > 0 && self.len() >= PAR_MIN_ELEMS {
            muse_parallel::parallel_for_rows(&mut out, inner, 1, reduce_rows);
        } else if inner > 0 {
            reduce_rows(0, &mut out);
        }
        let mut out_dims = dims.to_vec();
        out_dims.remove(axis);
        Tensor::from_vec(out, &out_dims)
    }

    /// Mean along `axis`, dropping that axis.
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        let n = self.dims()[axis] as f32;
        self.sum_axis(axis).mul_scalar(1.0 / n)
    }

    /// Maximum along `axis`, dropping that axis.
    pub fn max_axis(&self, axis: usize) -> Tensor {
        assert!(axis < self.rank(), "max_axis {axis} out of range");
        let dims = self.dims();
        let outer: usize = dims[..axis].iter().product();
        let mid = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        assert!(mid > 0, "max_axis over empty extent");
        let mut out = arena::take_full(outer * inner, f32::NEG_INFINITY);
        let src = self.as_slice();
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                for i in 0..inner {
                    let v = src[base + i];
                    let slot = &mut out[o * inner + i];
                    if v > *slot {
                        *slot = v;
                    }
                }
            }
        }
        let mut out_dims = dims.to_vec();
        out_dims.remove(axis);
        Tensor::from_vec(out, &out_dims)
    }

    /// Reduce this tensor (by summation) to `target` dims, inverting a
    /// broadcast. Used by autograd to fold gradients of broadcast operands.
    ///
    /// `target` must be broadcast-compatible with (and no larger than) the
    /// current shape when right-aligned.
    pub fn sum_to(&self, target: &[usize]) -> Tensor {
        if self.dims() == target {
            return self.clone();
        }
        let rank = self.rank();
        let t_rank = target.len();
        assert!(t_rank <= rank, "sum_to target rank {} exceeds source rank {}", t_rank, rank);
        // Sum away leading extra axes.
        let mut cur = self.clone();
        for _ in 0..rank - t_rank {
            cur = cur.sum_axis(0);
        }
        // Sum stretched axes back down to 1 (indexing two parallel arrays,
        // so an index loop is clearer than zip here).
        #[allow(clippy::needless_range_loop)]
        for axis in 0..t_rank {
            if target[axis] == 1 && cur.dims()[axis] != 1 {
                cur = cur.sum_axis(axis).unsqueeze(axis);
            } else {
                assert_eq!(
                    cur.dims()[axis],
                    target[axis],
                    "sum_to: axis {axis} extent {} not reducible to {}",
                    cur.dims()[axis],
                    target[axis]
                );
            }
        }
        cur
    }

    /// Index of the largest element in a rank-1 tensor.
    pub fn argmax(&self) -> usize {
        assert!(!self.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        let s = self.as_slice();
        for i in 1..s.len() {
            if s[i] > s[best] {
                best = i;
            }
        }
        best
    }

    /// Softmax along the last axis.
    pub fn softmax_last(&self) -> Tensor {
        let dims = self.dims();
        assert!(!dims.is_empty(), "softmax of scalar");
        let inner = dims[dims.len() - 1];
        // Every row is fully overwritten; rows of width 0 leave nothing.
        let mut out = arena::take_uninit(self.len());
        let src = self.as_slice();
        // Rows are independent; parallel partitioning is per whole row.
        let softmax_rows = |o0: usize, chunk: &mut [f32]| {
            for (d, orow) in chunk.chunks_mut(inner).enumerate() {
                let row = &src[(o0 + d) * inner..(o0 + d + 1) * inner];
                let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut denom = 0.0;
                for (e, &v) in orow.iter_mut().zip(row) {
                    *e = (v - m).exp();
                    denom += *e;
                }
                for e in orow.iter_mut() {
                    *e /= denom;
                }
            }
        };
        if inner > 0 && self.len() >= PAR_MIN_ELEMS {
            muse_parallel::parallel_for_rows(&mut out, inner, 1, softmax_rows);
        } else if inner > 0 {
            softmax_rows(0, &mut out);
        }
        Tensor::from_vec(out, dims)
    }

    /// Dot product of two rank-1 tensors of equal length.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.rank(), 1, "dot requires rank-1 lhs");
        assert_eq!(other.rank(), 1, "dot requires rank-1 rhs");
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        simd::dot(self.as_slice(), other.as_slice())
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        let s = self.as_slice();
        chunked_reduce(s.len(), |r| simd::sum_squares(&s[r])).sqrt()
    }

    /// Fused sum of squared errors against `other` (same shape required):
    /// `Σ (self[i] - other[i])²` in one pass, bit-identical to
    /// `self.sub(other).square().sum()` but with no temporaries.
    pub fn sse(&self, other: &Tensor) -> f32 {
        assert_eq!(self.dims(), other.dims(), "sse shape mismatch: {:?} vs {:?}", self.dims(), other.dims());
        let (a, b) = (self.as_slice(), other.as_slice());
        chunked_reduce(a.len(), |r| simd::sse(&a[r.start..r.end], &b[r.start..r.end]))
    }

    /// Sum over all axes except axis 0 — handy for per-sample reductions.
    pub fn sum_per_row(&self) -> Tensor {
        assert!(self.rank() >= 1, "sum_per_row on scalar");
        let n = self.dims()[0];
        let flat = self.reshaped(&[n, self.len() / n.max(1)]);
        flat.sum_axis(1)
    }
}

/// Mean of a slice of scalars; 0.0 when empty.
pub fn mean_of(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Build a one-hot rank-1 tensor of length `n` with 1.0 at `index`.
pub fn one_hot(n: usize, index: usize) -> Tensor {
    assert!(index < n, "one_hot index {index} out of range {n}");
    let mut t = Tensor::zeros(&[n]);
    t.as_mut_slice()[index] = 1.0;
    let _ = Shape::new(&[n]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_reductions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), 1.0);
        assert!((t.variance() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn axis_reductions() {
        let t = Tensor::arange(0.0, 6.0).reshape(&[2, 3]);
        assert_eq!(t.sum_axis(0).as_slice(), &[3.0, 5.0, 7.0]);
        assert_eq!(t.sum_axis(1).as_slice(), &[3.0, 12.0]);
        assert_eq!(t.mean_axis(1).as_slice(), &[1.0, 4.0]);
        assert_eq!(t.max_axis(0).as_slice(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn sum_axis_middle() {
        let t = Tensor::arange(0.0, 24.0).reshape(&[2, 3, 4]);
        let s = t.sum_axis(1);
        assert_eq!(s.dims(), &[2, 4]);
        assert_eq!(s.at(&[0, 0]), 0.0 + 4.0 + 8.0);
        assert_eq!(s.at(&[1, 3]), 15.0 + 19.0 + 23.0);
    }

    #[test]
    fn sum_to_inverts_broadcast() {
        // Broadcast [3] -> [2,3], gradient folds back to [3].
        let g = Tensor::ones(&[2, 3]);
        assert_eq!(g.sum_to(&[3]).as_slice(), &[2.0, 2.0, 2.0]);
        // Broadcast [2,1] -> [2,3].
        assert_eq!(g.sum_to(&[2, 1]).dims(), &[2, 1]);
        assert_eq!(g.sum_to(&[2, 1]).as_slice(), &[3.0, 3.0]);
        // No-op case.
        assert_eq!(g.sum_to(&[2, 3]), g);
        // Down to scalar shape.
        assert_eq!(g.sum_to(&[]).item(), 6.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0], &[2, 3]);
        let s = t.softmax_last();
        for r in 0..2 {
            let row_sum: f32 = (0..3).map(|c| s.at(&[r, c])).sum();
            assert!((row_sum - 1.0).abs() < 1e-6);
        }
        assert!((s.at(&[1, 0]) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_large_values_stable() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0], &[2]);
        let s = t.softmax_last();
        assert!(s.all_finite());
        assert!((s.sum() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dot_norm_argmax() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b), 32.0);
        assert!((Tensor::from_vec(vec![3.0, 4.0], &[2]).norm() - 5.0).abs() < 1e-6);
        assert_eq!(a.argmax(), 2);
    }

    #[test]
    fn one_hot_and_sum_per_row() {
        assert_eq!(one_hot(3, 1).as_slice(), &[0.0, 1.0, 0.0]);
        let t = Tensor::arange(0.0, 6.0).reshape(&[2, 3]);
        assert_eq!(t.sum_per_row().as_slice(), &[3.0, 12.0]);
    }
}
