//! Matrix multiplication kernels.
//!
//! The public `matmul` family partitions the output matrix into disjoint
//! row ranges and hands each range to `muse-parallel`; every row range is
//! computed by a cache-blocked micro-kernel ([`gemm_rows`],
//! [`gemm_bt_rows`], [`gemm_at_rows`]). The micro-kernels process output
//! rows in register tiles of four (one read of each B row feeds four
//! output rows) and block the shared `k` dimension so the streamed operand
//! stays in cache.
//!
//! **Determinism:** each output element is accumulated left-to-right over
//! ascending `p` (the shared dimension) no matter how rows are tiled or
//! partitioned across threads, so results are bit-identical for any
//! `MUSE_THREADS` value — and identical to the single-threaded kernel.
//! There is no `x == 0.0` skip anywhere: IEEE edge cases (`0.0 * INF` is
//! `NaN`) propagate exactly as in [`matmul_reference`].

use crate::simd;
use crate::tensor::Tensor;
use muse_obs as obs;

/// Bytes moved by a kernel touching `elems` f32 values.
fn f32_bytes(elems: usize) -> u64 {
    (elems * std::mem::size_of::<f32>()) as u64
}

/// Output rows per register tile: four accumulator rows share one read of
/// each B row.
const MR: usize = 4;

/// Cache block along the shared `k` dimension. Per block a tile touches
/// `KC * n` floats of B (`256 * n ≤ L2` for every shape in this project)
/// while the four output rows stay resident.
const KC: usize = 256;

/// Multiply–add count below which dispatching to the pool costs more than
/// the kernel itself; such products always run inline.
const PAR_MIN_FLOPS: usize = 1 << 15;

/// Compute output rows `[i0, i0 + out.len()/n)` of `C = A·B` into `out`,
/// which must be zeroed. `a` is `[m,k]` row-major, `b` is `[k,n]`.
///
/// Accumulation order over `p` is ascending within each [`KC`] block and
/// blocks are visited in order, so every element sees the same
/// left-to-right sum regardless of row tiling or SIMD level (the tile
/// kernels in [`crate::simd`] keep per-element accumulation sequential).
pub fn gemm_rows(a: &[f32], b: &[f32], out: &mut [f32], i0: usize, k: usize, n: usize) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    debug_assert_eq!(out.len(), rows * n);
    for p0 in (0..k).step_by(KC) {
        let p1 = (p0 + KC).min(k);
        let mut r = 0;
        // Four-row register tile: one pass over B rows feeds four output rows.
        while r + MR <= rows {
            let (block, _) = out[r * n..].split_at_mut(MR * n);
            let (o0, rest) = block.split_at_mut(n);
            let (o1, rest) = rest.split_at_mut(n);
            let (o2, o3) = rest.split_at_mut(n);
            let a0 = &a[(i0 + r) * k..][..k];
            let a1 = &a[(i0 + r + 1) * k..][..k];
            let a2 = &a[(i0 + r + 2) * k..][..k];
            let a3 = &a[(i0 + r + 3) * k..][..k];
            simd::gemm_tile4([a0, a1, a2, a3], p0, p1, b, n, [o0, o1, o2, o3]);
            r += MR;
        }
        // Remainder rows run the same update one row at a time; per element
        // the accumulation order is identical to the tiled path.
        for rr in r..rows {
            let orow = &mut out[rr * n..(rr + 1) * n];
            let arow = &a[(i0 + rr) * k..][..k];
            simd::gemm_tile1(arow, p0, p1, b, n, orow);
        }
    }
}

/// Compute output rows `[i0, i0 + out.len()/n)` of `C = A·Bᵀ` into `out`.
/// `a` is `[m,k]` row-major, `b` is `[n,k]` (so C's column `j` dots A rows
/// with B row `j`). Every element is one [`simd::dot`] — the canonical
/// lane-structured reduction, bit-identical at every SIMD level and thread
/// count.
pub fn gemm_bt_rows(a: &[f32], b: &[f32], out: &mut [f32], i0: usize, k: usize, n: usize) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    debug_assert_eq!(out.len(), rows * n);
    for r in 0..rows {
        let arow = &a[(i0 + r) * k..][..k];
        let orow = &mut out[r * n..(r + 1) * n];
        if k < simd::LANES {
            // Inner dimension shorter than the canonical reduction's lane
            // count: the vector dot would run entirely in its tail. The
            // four-column interleaved tile (four independent sequential
            // accumulators) wins here, and both dispatch paths share this
            // exact code, so SIMD on/off stays bit-identical.
            let mut j = 0;
            while j + 4 <= n {
                let b0 = &b[j * k..][..k];
                let b1 = &b[(j + 1) * k..][..k];
                let b2 = &b[(j + 2) * k..][..k];
                let b3 = &b[(j + 3) * k..][..k];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for ((((&av, &v0), &v1), &v2), &v3) in arow.iter().zip(b0).zip(b1).zip(b2).zip(b3) {
                    s0 += av * v0;
                    s1 += av * v1;
                    s2 += av * v2;
                    s3 += av * v3;
                }
                orow[j] = s0;
                orow[j + 1] = s1;
                orow[j + 2] = s2;
                orow[j + 3] = s3;
                j += 4;
            }
            for (jj, o) in orow.iter_mut().enumerate().skip(j) {
                let brow = &b[jj * k..][..k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                *o = acc;
            }
        } else {
            for (jj, o) in orow.iter_mut().enumerate() {
                *o = simd::dot(arow, &b[jj * k..][..k]);
            }
        }
    }
}

/// Compute output rows `[i0, i0 + out.len()/n)` of `C = Aᵀ·B` into `out`,
/// which must be zeroed. `a` is `[k,m]` row-major (so C row `i` gathers
/// A column `i`), `b` is `[k,n]`. Same four-row tile as [`gemm_rows`],
/// reading A column-wise.
pub fn gemm_at_rows(a: &[f32], b: &[f32], out: &mut [f32], i0: usize, k: usize, m: usize, n: usize) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    debug_assert_eq!(out.len(), rows * n);
    for p0 in (0..k).step_by(KC) {
        let p1 = (p0 + KC).min(k);
        let mut r = 0;
        while r + MR <= rows {
            let (block, _) = out[r * n..].split_at_mut(MR * n);
            let (o0, rest) = block.split_at_mut(n);
            let (o1, rest) = rest.split_at_mut(n);
            let (o2, o3) = rest.split_at_mut(n);
            simd::gemm_tile4_at(a, m, i0 + r, p0, p1, b, n, [o0, o1, o2, o3]);
            r += MR;
        }
        for rr in r..rows {
            let orow = &mut out[rr * n..(rr + 1) * n];
            simd::gemm_tile1_at(a, m, i0 + rr, p0, p1, b, n, orow);
        }
    }
}

/// Partition `out` (an `[m,n]` matrix) into row ranges across the pool and
/// run `f(first_row, row_chunk)` on each; inline when the product is small.
fn dispatch_rows<F>(out: &mut [f32], n: usize, flops: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if flops < PAR_MIN_FLOPS {
        f(0, out);
    } else {
        muse_parallel::parallel_for_rows(out, n, MR, f);
    }
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m,k] x [k,n] -> [m,n]`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank-2, got {}", self.shape());
        assert_eq!(rhs.rank(), 2, "matmul rhs must be rank-2, got {}", rhs.shape());
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        assert_eq!(k, k2, "matmul inner-dim mismatch: [{m},{k}] x [{k2},{n}]");
        let _t = obs::kernel_timer("tensor.matmul", f32_bytes(m * k + k * n + m * n));
        let a = self.as_slice();
        let b = rhs.as_slice();
        let mut out = crate::arena::take_zeroed(m * n); // gemm_rows accumulates into zeroes
        dispatch_rows(&mut out, n, m * k * n, |i0, chunk| gemm_rows(a, b, chunk, i0, k, n));
        Tensor::from_vec(out, &[m, n])
    }

    /// `self x rhs^T` without materializing the transpose: `[m,k] x [n,k]^T -> [m,n]`.
    pub fn matmul_bt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_bt lhs must be rank-2");
        assert_eq!(rhs.rank(), 2, "matmul_bt rhs must be rank-2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (rhs.dims()[0], rhs.dims()[1]);
        assert_eq!(k, k2, "matmul_bt inner-dim mismatch: [{m},{k}] x [{n},{k2}]^T");
        let _t = obs::kernel_timer("tensor.matmul_bt", f32_bytes(m * k + k * n + m * n));
        let a = self.as_slice();
        let b = rhs.as_slice();
        let mut out = crate::arena::take_uninit(m * n); // gemm_bt_rows assigns every element
        dispatch_rows(&mut out, n, m * k * n, |i0, chunk| gemm_bt_rows(a, b, chunk, i0, k, n));
        Tensor::from_vec(out, &[m, n])
    }

    /// `self^T x rhs` without materializing the transpose: `[k,m]^T x [k,n] -> [m,n]`.
    pub fn matmul_at(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_at lhs must be rank-2");
        assert_eq!(rhs.rank(), 2, "matmul_at rhs must be rank-2");
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        assert_eq!(k, k2, "matmul_at inner-dim mismatch: [{k},{m}]^T x [{k2},{n}]");
        let _t = obs::kernel_timer("tensor.matmul_at", f32_bytes(m * k + k * n + m * n));
        let a = self.as_slice();
        let b = rhs.as_slice();
        let mut out = crate::arena::take_zeroed(m * n); // gemm_at_rows accumulates into zeroes
        dispatch_rows(&mut out, n, m * k * n, |i0, chunk| gemm_at_rows(a, b, chunk, i0, k, m, n));
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix-vector product `[m,k] x [k] -> [m]`.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec lhs must be rank-2");
        assert_eq!(v.rank(), 1, "matvec rhs must be rank-1");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        assert_eq!(k, v.len(), "matvec inner-dim mismatch");
        let _t = obs::kernel_timer("tensor.matvec", f32_bytes(m * k + k + m));
        let a = self.as_slice();
        let x = v.as_slice();
        let mut out = crate::arena::take_uninit(m); // every element assigned below
        if k < simd::LANES {
            // Shorter than the canonical reduction's lane count: a plain
            // sequential fold (shared by both dispatch paths) beats a dot
            // that runs entirely in its tail.
            for i in 0..m {
                let row = &a[i * k..(i + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &xv) in row.iter().zip(x) {
                    acc += av * xv;
                }
                out[i] = acc;
            }
        } else {
            for i in 0..m {
                out[i] = simd::dot(&a[i * k..(i + 1) * k], x);
            }
        }
        Tensor::from_vec(out, &[m])
    }
}

/// Naive reference matmul used by tests to validate the optimized kernel.
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a.at(&[i, p]) * b.at(&[p, j]);
            }
            *out.at_mut(&[i, j]) = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::arange(0.0, 12.0).reshape(&[3, 4]);
        assert!(Tensor::eye(3).matmul(&a).approx_eq(&a, 1e-6));
        assert!(a.matmul(&Tensor::eye(4)).approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_matches_reference() {
        let a = Tensor::from_vec((0..15).map(|i| (i as f32 * 0.7).sin()).collect(), &[3, 5]);
        let b = Tensor::from_vec((0..20).map(|i| (i as f32 * 0.3).cos()).collect(), &[5, 4]);
        assert!(a.matmul(&b).approx_eq(&matmul_reference(&a, &b), 1e-5));
    }

    #[test]
    fn matmul_matches_reference_above_parallel_threshold() {
        // Big enough that dispatch_rows actually fans out (and the row
        // count is not a multiple of the register tile).
        let (m, k, n) = (37, 41, 43);
        let a = Tensor::from_vec((0..m * k).map(|i| (i as f32 * 0.11).sin()).collect(), &[m, k]);
        let b = Tensor::from_vec((0..k * n).map(|i| (i as f32 * 0.07).cos()).collect(), &[k, n]);
        assert!(a.matmul(&b).approx_eq(&matmul_reference(&a, &b), 1e-3));
    }

    #[test]
    fn transposed_variants_match() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32 * 0.25 - 1.0).collect(), &[3, 4]);
        let b = Tensor::from_vec((0..20).map(|i| i as f32 * 0.1).collect(), &[4, 5]);
        let plain = a.matmul(&b);
        assert!(a.matmul_bt(&b.transpose2()).approx_eq(&plain, 1e-5));
        assert!(a.transpose2().matmul_at(&b).approx_eq(&plain, 1e-5));
    }

    #[test]
    fn transposed_variants_match_reference_non_square() {
        // Non-square shapes with every dimension distinct, sized past the
        // register tile in both rows and columns.
        let (m, k, n) = (7, 9, 11);
        let data_a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.31).sin()).collect();
        let data_b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.17).cos()).collect();
        let a = Tensor::from_vec(data_a, &[m, k]);
        let b = Tensor::from_vec(data_b, &[k, n]);
        let want = matmul_reference(&a, &b);
        assert!(a.matmul_bt(&b.transpose2()).approx_eq(&want, 1e-5));
        assert!(a.transpose2().matmul_at(&b).approx_eq(&want, 1e-5));
    }

    #[test]
    fn matmul_propagates_nan_and_inf() {
        // IEEE semantics: 0 * inf = NaN, and NaN poisons its row/column.
        // A zero-skip "optimization" would wrongly produce finite values.
        let a = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[2, 2]);
        let b = Tensor::from_vec(vec![f32::INFINITY, 5.0, 6.0, 7.0], &[2, 2]);
        let c = a.matmul(&b);
        let want = matmul_reference(&a, &b);
        assert!(c.as_slice()[0].is_nan(), "0*inf + 1*6 must be NaN, got {}", c.as_slice()[0]);
        for (got, expect) in c.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(got.is_nan(), expect.is_nan());
            if !expect.is_nan() {
                assert_eq!(got, expect);
            }
        }
    }

    #[test]
    fn matmul_at_propagates_nan_and_inf() {
        let a = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[2, 2]);
        let b = Tensor::from_vec(vec![f32::INFINITY, 5.0, 6.0, 7.0], &[2, 2]);
        let got = a.transpose2().matmul_at(&b);
        let want = matmul_reference(&a, &b);
        for (g, e) in got.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(g.is_nan(), e.is_nan());
            if !e.is_nan() {
                assert_eq!(g, e);
            }
        }
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::arange(0.0, 6.0).reshape(&[2, 3]);
        let v = Tensor::from_vec(vec![1.0, 0.5, 2.0], &[3]);
        let mv = a.matvec(&v);
        let mm = a.matmul(&v.reshaped(&[3, 1]));
        assert_eq!(mv.as_slice(), mm.as_slice());
    }

    #[test]
    #[should_panic(expected = "inner-dim mismatch")]
    fn matmul_bad_dims_panics() {
        let _ = Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }
}
