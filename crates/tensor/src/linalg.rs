//! Matrix multiplication kernels.
//!
//! A straightforward ikj-ordered triple loop with a transposed-B fast path is
//! plenty for the matrix sizes in this project (≤ a few thousand per side).

use crate::tensor::Tensor;
use muse_obs as obs;

/// Bytes moved by a kernel touching `elems` f32 values.
fn f32_bytes(elems: usize) -> u64 {
    (elems * std::mem::size_of::<f32>()) as u64
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m,k] x [k,n] -> [m,n]`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank-2, got {}", self.shape());
        assert_eq!(rhs.rank(), 2, "matmul rhs must be rank-2, got {}", rhs.shape());
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        assert_eq!(k, k2, "matmul inner-dim mismatch: [{m},{k}] x [{k2},{n}]");
        let _t = obs::kernel_timer("tensor.matmul", f32_bytes(m * k + k * n + m * n));
        let a = self.as_slice();
        let b = rhs.as_slice();
        let mut out = vec![0.0f32; m * n];
        // ikj ordering keeps the inner loop streaming over contiguous rows of
        // B and the output, which the guide's cache advice favours.
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `self x rhs^T` without materializing the transpose: `[m,k] x [n,k]^T -> [m,n]`.
    pub fn matmul_bt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_bt lhs must be rank-2");
        assert_eq!(rhs.rank(), 2, "matmul_bt rhs must be rank-2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (rhs.dims()[0], rhs.dims()[1]);
        assert_eq!(k, k2, "matmul_bt inner-dim mismatch: [{m},{k}] x [{n},{k2}]^T");
        let _t = obs::kernel_timer("tensor.matmul_bt", f32_bytes(m * k + k * n + m * n));
        let a = self.as_slice();
        let b = rhs.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (av, bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `self^T x rhs` without materializing the transpose: `[k,m]^T x [k,n] -> [m,n]`.
    pub fn matmul_at(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_at lhs must be rank-2");
        assert_eq!(rhs.rank(), 2, "matmul_at rhs must be rank-2");
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        assert_eq!(k, k2, "matmul_at inner-dim mismatch: [{k},{m}]^T x [{k2},{n}]");
        let _t = obs::kernel_timer("tensor.matmul_at", f32_bytes(m * k + k * n + m * n));
        let a = self.as_slice();
        let b = rhs.as_slice();
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let arow = &a[p * m..(p + 1) * m];
            let brow = &b[p * n..(p + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix-vector product `[m,k] x [k] -> [m]`.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec lhs must be rank-2");
        assert_eq!(v.rank(), 1, "matvec rhs must be rank-1");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        assert_eq!(k, v.len(), "matvec inner-dim mismatch");
        let _t = obs::kernel_timer("tensor.matvec", f32_bytes(m * k + k + m));
        let a = self.as_slice();
        let x = v.as_slice();
        let mut out = vec![0.0f32; m];
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            out[i] = row.iter().zip(x).map(|(&r, &xv)| r * xv).sum();
        }
        Tensor::from_vec(out, &[m])
    }
}

/// Naive reference matmul used by tests to validate the optimized kernel.
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a.at(&[i, p]) * b.at(&[p, j]);
            }
            *out.at_mut(&[i, j]) = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::arange(0.0, 12.0).reshape(&[3, 4]);
        assert!(Tensor::eye(3).matmul(&a).approx_eq(&a, 1e-6));
        assert!(a.matmul(&Tensor::eye(4)).approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_matches_reference() {
        let a = Tensor::from_vec((0..15).map(|i| (i as f32 * 0.7).sin()).collect(), &[3, 5]);
        let b = Tensor::from_vec((0..20).map(|i| (i as f32 * 0.3).cos()).collect(), &[5, 4]);
        assert!(a.matmul(&b).approx_eq(&matmul_reference(&a, &b), 1e-5));
    }

    #[test]
    fn transposed_variants_match() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32 * 0.25 - 1.0).collect(), &[3, 4]);
        let b = Tensor::from_vec((0..20).map(|i| i as f32 * 0.1).collect(), &[4, 5]);
        let plain = a.matmul(&b);
        assert!(a.matmul_bt(&b.transpose2()).approx_eq(&plain, 1e-5));
        assert!(a.transpose2().matmul_at(&b).approx_eq(&plain, 1e-5));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::arange(0.0, 6.0).reshape(&[2, 3]);
        let v = Tensor::from_vec(vec![1.0, 0.5, 2.0], &[3]);
        let mv = a.matvec(&v);
        let mm = a.matmul(&v.reshaped(&[3, 1]));
        assert_eq!(mv.as_slice(), mm.as_slice());
    }

    #[test]
    #[should_panic(expected = "inner-dim mismatch")]
    fn matmul_bad_dims_panics() {
        let _ = Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }
}
