//! The tensor-storage arena: a process-wide pool that recycles the
//! `Vec<f32>` backing stores of dropped [`Tensor`](crate::Tensor)s.
//!
//! MUSE-Net's training graph has the same shape every batch, so the steady
//! state re-allocates the same set of buffers over and over. The arena
//! breaks that cycle: every tensor's storage is returned here on drop (see
//! `impl Drop for Tensor`) and handed back out by the constructors and
//! kernels in this crate, making the steady-state batch (nearly)
//! allocation-free.
//!
//! ## Correctness
//!
//! Recycled buffers are ordinary initialized `Vec<f32>`s holding stale
//! values — never uninitialized memory. [`take_zeroed`] always hands out
//! zeroes; [`take_uninit`] hands out stale values and is only used by
//! kernels that provably overwrite every element before the buffer becomes
//! observable. Buffer identity therefore never influences computed values,
//! which is why pooling preserves the PR 2 determinism contract
//! (bit-identical results for any `MUSE_THREADS`) — asserted by
//! `tests/determinism.rs` and the pooled-vs-fresh training test in
//! `muse-core`.
//!
//! ## Sharding
//!
//! The arena is split into [`SHARD_COUNT`] independently locked
//! [`BufferPool`] shards. Each thread is pinned to one shard (round-robin
//! at first use), so concurrent fleet trainings (`MUSE_JOBS > 1`) recycle
//! and take from disjoint locks instead of serializing on one pool mutex.
//! A single-threaded run touches exactly one shard and behaves like the
//! old unsharded arena. The `MUSE_ARENA_MAX_MB` byte budget is enforced
//! **globally across shards** (see [`recycle`]), not per shard.
//!
//! ## Knobs
//!
//! * `MUSE_ARENA=0` disables pooling at startup (every take is a fresh
//!   allocation, every recycle a free) — the comparison baseline.
//! * `MUSE_ARENA_MAX_MB` bounds retained bytes across all shards
//!   (default 256 MiB).
//!
//! Raw counters are always maintained (relaxed atomics); the
//! `tensor.alloc_bytes` / `tensor.pool_hits` / `tensor.pool_misses`
//! counters and the `tensor.pool_retained_bytes` gauge are additionally
//! published to `muse-obs` when telemetry is enabled, plus per-shard
//! `tensor.pool_hits.shard<k>` / `tensor.pool_misses.shard<k>` splits
//! whose sums equal the aggregate counters.

use muse_obs as obs;
use muse_parallel::BufferPool;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Maximum number of retained buffers per shard. A full MUSE-Net training
/// step drops every tape node's value plus all gradients at once (a few
/// thousand tensors); the count bound only backstops pathological churn —
/// the real memory ceiling is the global byte bound. Kept at the old
/// unsharded value so a single-threaded run (one live shard) retains
/// exactly what it did before sharding.
const MAX_BUFFERS: usize = 8192;
/// Default retained-byte bound (overridable via `MUSE_ARENA_MAX_MB`).
const DEFAULT_MAX_MB: usize = 256;
/// Buffers smaller than this many elements are not worth pooling
/// (scalars and tiny shape-sized tensors churn the shelves for no win).
const MIN_POOL_LEN: usize = 32;
/// Number of independently locked arena shards. Enough that concurrent
/// fleet jobs (MUSE_JOBS is single-digit in practice) rarely collide.
pub const SHARD_COUNT: usize = 8;

static ENABLED: AtomicBool = AtomicBool::new(true);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static POOL_HITS: AtomicU64 = AtomicU64::new(0);
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);

/// The sharded arena plus its per-shard raw counters.
struct Arena {
    shards: Vec<BufferPool>,
    shard_hits: Vec<AtomicU64>,
    shard_misses: Vec<AtomicU64>,
    /// Global retained-byte budget, enforced across all shards.
    max_bytes: usize,
}

fn arena() -> &'static Arena {
    static ARENA: OnceLock<Arena> = OnceLock::new();
    ARENA.get_or_init(|| {
        // Environment is read once, at first tensor allocation.
        if std::env::var("MUSE_ARENA").is_ok_and(|v| {
            let v = v.trim();
            v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false")
        }) {
            ENABLED.store(false, Ordering::Relaxed);
        }
        let max_mb = std::env::var("MUSE_ARENA_MAX_MB")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_MAX_MB);
        let max_bytes = max_mb.saturating_mul(1 << 20);
        Arena {
            // Each shard's own byte bound is the full global budget — the
            // binding constraint lives in `recycle`, which evicts across
            // shards; the per-shard bound only rejects single buffers
            // larger than the whole budget.
            shards: (0..SHARD_COUNT).map(|_| BufferPool::new(MAX_BUFFERS, max_bytes)).collect(),
            shard_hits: (0..SHARD_COUNT).map(|_| AtomicU64::new(0)).collect(),
            shard_misses: (0..SHARD_COUNT).map(|_| AtomicU64::new(0)).collect(),
            max_bytes,
        }
    })
}

/// Round-robin shard assignment, fixed per thread at first arena use:
/// concurrent fleet workers land on distinct shards (modulo collisions
/// past `SHARD_COUNT` threads) while a thread's own drop→take cycles stay
/// shard-local and keep hitting.
fn my_shard() -> usize {
    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static MY_SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    MY_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARD_COUNT;
        s.set(v);
        v
    })
}

fn total_retained_bytes(a: &Arena) -> usize {
    a.shards.iter().map(|s| s.retained_bytes()).sum()
}

/// Whether pooling is on. When off, takes are fresh allocations and
/// recycles are frees — the exact pre-arena behavior.
#[inline]
pub fn enabled() -> bool {
    arena(); // ensure the env knob has been applied
    ENABLED.load(Ordering::Relaxed)
}

/// Toggle pooling at runtime. Used by the pooled-vs-fresh bit-identity
/// tests; production runs configure via `MUSE_ARENA` instead.
pub fn set_enabled(on: bool) {
    arena();
    ENABLED.store(on, Ordering::Relaxed);
    if !on {
        clear();
    }
}

/// Cached interned obs counters — the registry lookup costs a lock, and
/// tensor allocation is far hotter than any other instrumented site.
struct ObsCounters {
    alloc_bytes: &'static obs::Counter,
    hits: &'static obs::Counter,
    misses: &'static obs::Counter,
    retained: &'static obs::Gauge,
    shard_hits: Vec<&'static obs::Counter>,
    shard_misses: Vec<&'static obs::Counter>,
}

fn obs_counters() -> &'static ObsCounters {
    static C: OnceLock<ObsCounters> = OnceLock::new();
    C.get_or_init(|| ObsCounters {
        alloc_bytes: obs::counter("tensor.alloc_bytes"),
        hits: obs::counter("tensor.pool_hits"),
        misses: obs::counter("tensor.pool_misses"),
        retained: obs::gauge("tensor.pool_retained_bytes"),
        // Counter names are interned by `&'static str`; the per-shard
        // names are composed once here and leaked (SHARD_COUNT is tiny).
        shard_hits: (0..SHARD_COUNT)
            .map(|k| obs::counter(Box::leak(format!("tensor.pool_hits.shard{k}").into_boxed_str())))
            .collect(),
        shard_misses: (0..SHARD_COUNT)
            .map(|k| obs::counter(Box::leak(format!("tensor.pool_misses.shard{k}").into_boxed_str())))
            .collect(),
    })
}

#[inline]
fn note_hit(shard: usize) {
    POOL_HITS.fetch_add(1, Ordering::Relaxed);
    arena().shard_hits[shard].fetch_add(1, Ordering::Relaxed);
    if obs::enabled() {
        let c = obs_counters();
        c.hits.add(1);
        c.shard_hits[shard].add(1);
    }
}

#[inline]
fn note_miss(shard: usize, len: usize) {
    let bytes = (len * std::mem::size_of::<f32>()) as u64;
    POOL_MISSES.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(bytes, Ordering::Relaxed);
    arena().shard_misses[shard].fetch_add(1, Ordering::Relaxed);
    if obs::enabled() {
        let c = obs_counters();
        c.misses.add(1);
        c.alloc_bytes.add(bytes);
        c.shard_misses[shard].add(1);
    }
}

/// A buffer of exactly `len` zeroes, recycled when possible.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    if let Some(mut buf) = pooled(len) {
        buf.clear();
        buf.resize(len, 0.0);
        return buf;
    }
    vec![0.0; len]
}

/// A buffer of exactly `len` elements with **unspecified values** (stale
/// data from a recycled buffer, or zeroes when freshly allocated). Only
/// for kernels that overwrite every element before the result is read.
pub fn take_uninit(len: usize) -> Vec<f32> {
    if let Some(mut buf) = pooled(len) {
        buf.resize(len, 0.0);
        return buf;
    }
    vec![0.0; len]
}

/// A buffer of exactly `len` copies of `value`.
pub fn take_full(len: usize, value: f32) -> Vec<f32> {
    let mut buf = take_uninit(len);
    buf.fill(value);
    buf
}

/// A recycled (or fresh) copy of `src`.
pub fn take_copy(src: &[f32]) -> Vec<f32> {
    if let Some(mut buf) = pooled(src.len()) {
        buf.clear();
        buf.extend_from_slice(src);
        return buf;
    }
    src.to_vec()
}

fn pooled(len: usize) -> Option<Vec<f32>> {
    let shard = my_shard();
    if len < MIN_POOL_LEN || !enabled() {
        note_miss(shard, len);
        return None;
    }
    // Takes are shard-local: stealing from another shard's shelf would
    // re-introduce the cross-thread lock traffic sharding exists to avoid,
    // and a miss is just one fresh allocation.
    match arena().shards[shard].try_take(len) {
        Some(buf) => {
            note_hit(shard);
            Some(buf)
        }
        None => {
            note_miss(shard, len);
            None
        }
    }
}

/// Shelve `buf` into `shards[idx]` while keeping total retained bytes
/// across all shards within `max_bytes`, evicting strictly smaller
/// shelved buffers (own shard first, then the others) to make room.
/// Returns whether the buffer was shelved.
///
/// The budget check races benignly with concurrent recycles: each thread
/// sums the shard counters it can see, so the total can overshoot by at
/// most one in-flight buffer per thread — bounded slack, never unbounded
/// growth.
fn recycle_bounded(shards: &[BufferPool], idx: usize, buf: Vec<f32>, max_bytes: usize) -> bool {
    let cap = buf.capacity();
    let bytes = cap * std::mem::size_of::<f32>();
    if bytes > max_bytes {
        return false;
    }
    while shards.iter().map(|s| s.retained_bytes()).sum::<usize>() + bytes > max_bytes {
        let freed = shards[idx].evict_smaller_than(cap).or_else(|| {
            (0..shards.len()).filter(|&k| k != idx).find_map(|k| shards[k].evict_smaller_than(cap))
        });
        if freed.is_none() {
            // Every shelved buffer is at least this large — the newcomer
            // is the least valuable, so it is the one freed.
            return false;
        }
    }
    shards[idx].recycle(buf);
    true
}

/// Return a buffer to the arena (no-op free for tiny buffers or when
/// pooling is disabled). Called by `Tensor`'s `Drop` for every tensor.
/// The `MUSE_ARENA_MAX_MB` budget is enforced globally across shards
/// here, so N concurrent jobs still retain at most one budget in total.
pub fn recycle(buf: Vec<f32>) {
    if buf.capacity() < MIN_POOL_LEN || !enabled() {
        return;
    }
    let a = arena();
    recycle_bounded(&a.shards, my_shard(), buf, a.max_bytes);
    if obs::enabled() {
        obs_counters().retained.set(total_retained_bytes(a) as f64);
    }
}

/// Arena counters since process start (raw, always maintained).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Bytes freshly allocated (pool misses × request size).
    pub alloc_bytes: u64,
    /// Takes served from the pool.
    pub pool_hits: u64,
    /// Takes that fell back to a fresh allocation.
    pub pool_misses: u64,
    /// Bytes currently shelved in the pool.
    pub retained_bytes: u64,
    /// Buffers currently shelved in the pool.
    pub retained_buffers: u64,
}

/// Snapshot the arena counters (aggregated across shards).
pub fn stats() -> ArenaStats {
    let a = arena();
    ArenaStats {
        alloc_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        pool_hits: POOL_HITS.load(Ordering::Relaxed),
        pool_misses: POOL_MISSES.load(Ordering::Relaxed),
        retained_bytes: total_retained_bytes(a) as u64,
        retained_buffers: a.shards.iter().map(|s| s.retained_buffers() as u64).sum(),
    }
}

/// Per-shard arena counters since process start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Takes this shard served from its shelf.
    pub hits: u64,
    /// Takes on this shard that fell back to a fresh allocation.
    pub misses: u64,
    /// Bytes currently shelved in this shard.
    pub retained_bytes: u64,
    /// Buffers currently shelved in this shard.
    pub retained_buffers: u64,
}

/// Snapshot every shard's counters, indexed by shard. Sums across shards
/// equal the corresponding [`stats`] aggregates.
pub fn shard_stats() -> Vec<ShardStats> {
    let a = arena();
    (0..SHARD_COUNT)
        .map(|k| ShardStats {
            hits: a.shard_hits[k].load(Ordering::Relaxed),
            misses: a.shard_misses[k].load(Ordering::Relaxed),
            retained_bytes: a.shards[k].retained_bytes() as u64,
            retained_buffers: a.shards[k].retained_buffers() as u64,
        })
        .collect()
}

/// Drop every retained buffer in every shard (tests; frees memory, keeps
/// counters).
pub fn clear() {
    for shard in &arena().shards {
        shard.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    /// Serializes tests that toggle the global arena switch.
    pub(crate) fn arena_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn dropped_tensor_storage_is_reused() {
        let _g = arena_test_lock();
        set_enabled(true);
        // Other tests share the global pool, so a specific buffer can be
        // stolen between drop and take; retry until we observe reuse.
        let mut reused = false;
        for _ in 0..32 {
            let t = Tensor::full(&[61, 67], 3.0); // distinctive size
            let ptr = t.as_slice().as_ptr();
            drop(t); // storage recycles into the arena
            let before = stats();
            let t2 = Tensor::zeros(&[61, 67]);
            let after = stats();
            assert!(t2.as_slice().iter().all(|&v| v == 0.0), "recycled zeros must be zeroed");
            if t2.as_slice().as_ptr() == ptr {
                assert!(after.pool_hits > before.pool_hits, "ptr reuse must be counted as a hit");
                reused = true;
                break;
            }
        }
        assert!(reused, "dropped storage was never reused across 32 attempts");
    }

    #[test]
    fn live_tensors_never_alias() {
        let _g = arena_test_lock();
        set_enabled(true);
        clear();
        let a = Tensor::full(&[128], 1.0);
        let b = Tensor::full(&[128], 2.0);
        assert_ne!(a.as_slice().as_ptr(), b.as_slice().as_ptr(), "live tensors must not share storage");
        assert!(a.as_slice().iter().all(|&v| v == 1.0));
        assert!(b.as_slice().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn disabled_arena_always_allocates() {
        let _g = arena_test_lock();
        set_enabled(false);
        let before = stats();
        drop(Tensor::zeros(&[256]));
        let t = Tensor::zeros(&[256]);
        let after = stats();
        assert!(after.alloc_bytes >= before.alloc_bytes + 2 * 256 * 4, "every take allocates while disabled");
        drop(t);
        set_enabled(true);
    }

    #[test]
    fn shard_stats_sum_to_aggregate() {
        let _g = arena_test_lock();
        set_enabled(true);
        // Generate some traffic on this thread's shard.
        for _ in 0..4 {
            drop(Tensor::zeros(&[128]));
            drop(Tensor::zeros(&[128]));
        }
        let total = stats();
        let shards = shard_stats();
        assert_eq!(shards.len(), SHARD_COUNT);
        assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), total.pool_hits);
        assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), total.pool_misses);
        assert_eq!(shards.iter().map(|s| s.retained_bytes).sum::<u64>(), total.retained_bytes);
        assert_eq!(shards.iter().map(|s| s.retained_buffers).sum::<u64>(), total.retained_buffers);
    }

    #[test]
    fn threads_land_on_distinct_shards_and_budget_is_global() {
        // Direct test of the cross-shard budget: two "threads" (simulated
        // by explicit shard indices) recycle into a budget that only fits
        // one buffer — the total across shards must stay bounded.
        let shards: Vec<super::BufferPool> = (0..4).map(|_| super::BufferPool::new(64, 4096)).collect();
        assert!(recycle_bounded(&shards, 0, Vec::with_capacity(512), 4096)); // 2048 bytes
        assert!(recycle_bounded(&shards, 1, Vec::with_capacity(256), 4096)); // 1024 bytes
                                                                             // 2048 more would exceed 4096 total: the smaller shelf on shard 1
                                                                             // is evicted cross-shard to make room.
        assert!(recycle_bounded(&shards, 2, Vec::with_capacity(512), 4096));
        let total: usize = shards.iter().map(|s| s.retained_bytes()).sum();
        assert!(total <= 4096, "global budget exceeded: {total}");
        assert_eq!(shards[1].retained_buffers(), 0, "smaller cross-shard buffer was evicted");
        // A buffer bigger than everything shelved is itself dropped.
        assert!(!recycle_bounded(&shards, 3, Vec::with_capacity(4096), 4096));
        assert_eq!(shards[3].retained_buffers(), 0);
    }

    #[test]
    fn concurrent_threads_use_disjoint_shard_locks() {
        let _g = arena_test_lock();
        set_enabled(true);
        // Each spawned thread gets its own round-robin shard; traffic from
        // 4 threads must appear in ≥ 2 distinct shards' stats.
        let before: Vec<u64> = shard_stats().iter().map(|s| s.hits + s.misses).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        drop(Tensor::zeros(&[96]));
                    }
                });
            }
        });
        let after: Vec<u64> = shard_stats().iter().map(|s| s.hits + s.misses).collect();
        let touched = before.iter().zip(&after).filter(|(b, a)| a.checked_sub(**b).unwrap_or(0) > 0).count();
        assert!(touched >= 2, "4 threads hit only {touched} shard(s)");
    }

    #[test]
    fn tiny_buffers_are_not_pooled() {
        // Below MIN_POOL_LEN both take and recycle bypass the pool entirely:
        // the buffer handed out is always a fresh allocation.
        let _g = arena_test_lock();
        set_enabled(true);
        let before = stats();
        let v = take_zeroed(2);
        recycle(v);
        let after = stats();
        assert!(after.alloc_bytes >= before.alloc_bytes + 2 * 4, "tiny takes always allocate");
    }
}
