//! The tensor-storage arena: a process-wide pool that recycles the
//! `Vec<f32>` backing stores of dropped [`Tensor`](crate::Tensor)s.
//!
//! MUSE-Net's training graph has the same shape every batch, so the steady
//! state re-allocates the same set of buffers over and over. The arena
//! breaks that cycle: every tensor's storage is returned here on drop (see
//! `impl Drop for Tensor`) and handed back out by the constructors and
//! kernels in this crate, making the steady-state batch (nearly)
//! allocation-free.
//!
//! ## Correctness
//!
//! Recycled buffers are ordinary initialized `Vec<f32>`s holding stale
//! values — never uninitialized memory. [`take_zeroed`] always hands out
//! zeroes; [`take_uninit`] hands out stale values and is only used by
//! kernels that provably overwrite every element before the buffer becomes
//! observable. Buffer identity therefore never influences computed values,
//! which is why pooling preserves the PR 2 determinism contract
//! (bit-identical results for any `MUSE_THREADS`) — asserted by
//! `tests/determinism.rs` and the pooled-vs-fresh training test in
//! `muse-core`.
//!
//! ## Knobs
//!
//! * `MUSE_ARENA=0` disables pooling at startup (every take is a fresh
//!   allocation, every recycle a free) — the comparison baseline.
//! * `MUSE_ARENA_MAX_MB` bounds retained bytes (default 256 MiB).
//!
//! Raw counters are always maintained (relaxed atomics); the
//! `tensor.alloc_bytes` / `tensor.pool_hits` / `tensor.pool_misses`
//! counters and the `tensor.pool_retained_bytes` gauge are additionally
//! published to `muse-obs` when telemetry is enabled.

use muse_obs as obs;
use muse_parallel::BufferPool;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Maximum number of retained buffers. A full MUSE-Net training step drops
/// every tape node's value plus all gradients at once (a few thousand
/// tensors); the count bound only backstops pathological churn — the real
/// memory ceiling is the byte bound below.
const MAX_BUFFERS: usize = 8192;
/// Default retained-byte bound (overridable via `MUSE_ARENA_MAX_MB`).
const DEFAULT_MAX_MB: usize = 256;
/// Buffers smaller than this many elements are not worth pooling
/// (scalars and tiny shape-sized tensors churn the shelves for no win).
const MIN_POOL_LEN: usize = 32;

static ENABLED: AtomicBool = AtomicBool::new(true);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static POOL_HITS: AtomicU64 = AtomicU64::new(0);
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);

fn pool() -> &'static BufferPool {
    static POOL: OnceLock<BufferPool> = OnceLock::new();
    POOL.get_or_init(|| {
        // Environment is read once, at first tensor allocation.
        if std::env::var("MUSE_ARENA").is_ok_and(|v| {
            let v = v.trim();
            v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false")
        }) {
            ENABLED.store(false, Ordering::Relaxed);
        }
        let max_mb = std::env::var("MUSE_ARENA_MAX_MB")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_MAX_MB);
        BufferPool::new(MAX_BUFFERS, max_mb.saturating_mul(1 << 20))
    })
}

/// Whether pooling is on. When off, takes are fresh allocations and
/// recycles are frees — the exact pre-arena behavior.
#[inline]
pub fn enabled() -> bool {
    pool(); // ensure the env knob has been applied
    ENABLED.load(Ordering::Relaxed)
}

/// Toggle pooling at runtime. Used by the pooled-vs-fresh bit-identity
/// tests; production runs configure via `MUSE_ARENA` instead.
pub fn set_enabled(on: bool) {
    pool();
    ENABLED.store(on, Ordering::Relaxed);
    if !on {
        pool().clear();
    }
}

/// Cached interned obs counters — the registry lookup costs a lock, and
/// tensor allocation is far hotter than any other instrumented site.
struct ObsCounters {
    alloc_bytes: &'static obs::Counter,
    hits: &'static obs::Counter,
    misses: &'static obs::Counter,
    retained: &'static obs::Gauge,
}

fn obs_counters() -> &'static ObsCounters {
    static C: OnceLock<ObsCounters> = OnceLock::new();
    C.get_or_init(|| ObsCounters {
        alloc_bytes: obs::counter("tensor.alloc_bytes"),
        hits: obs::counter("tensor.pool_hits"),
        misses: obs::counter("tensor.pool_misses"),
        retained: obs::gauge("tensor.pool_retained_bytes"),
    })
}

#[inline]
fn note_hit() {
    POOL_HITS.fetch_add(1, Ordering::Relaxed);
    if obs::enabled() {
        obs_counters().hits.add(1);
    }
}

#[inline]
fn note_miss(len: usize) {
    let bytes = (len * std::mem::size_of::<f32>()) as u64;
    POOL_MISSES.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(bytes, Ordering::Relaxed);
    if obs::enabled() {
        let c = obs_counters();
        c.misses.add(1);
        c.alloc_bytes.add(bytes);
    }
}

/// A buffer of exactly `len` zeroes, recycled when possible.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    if let Some(mut buf) = pooled(len) {
        buf.clear();
        buf.resize(len, 0.0);
        return buf;
    }
    vec![0.0; len]
}

/// A buffer of exactly `len` elements with **unspecified values** (stale
/// data from a recycled buffer, or zeroes when freshly allocated). Only
/// for kernels that overwrite every element before the result is read.
pub fn take_uninit(len: usize) -> Vec<f32> {
    if let Some(mut buf) = pooled(len) {
        buf.resize(len, 0.0);
        return buf;
    }
    vec![0.0; len]
}

/// A buffer of exactly `len` copies of `value`.
pub fn take_full(len: usize, value: f32) -> Vec<f32> {
    let mut buf = take_uninit(len);
    buf.fill(value);
    buf
}

/// A recycled (or fresh) copy of `src`.
pub fn take_copy(src: &[f32]) -> Vec<f32> {
    if let Some(mut buf) = pooled(src.len()) {
        buf.clear();
        buf.extend_from_slice(src);
        return buf;
    }
    src.to_vec()
}

fn pooled(len: usize) -> Option<Vec<f32>> {
    if len < MIN_POOL_LEN || !enabled() {
        note_miss(len);
        return None;
    }
    match pool().try_take(len) {
        Some(buf) => {
            note_hit();
            Some(buf)
        }
        None => {
            note_miss(len);
            None
        }
    }
}

/// Return a buffer to the arena (no-op free for tiny buffers or when
/// pooling is disabled). Called by `Tensor`'s `Drop` for every tensor.
pub fn recycle(buf: Vec<f32>) {
    if buf.capacity() < MIN_POOL_LEN || !enabled() {
        return;
    }
    pool().recycle(buf);
    if obs::enabled() {
        obs_counters().retained.set(pool().retained_bytes() as f64);
    }
}

/// Arena counters since process start (raw, always maintained).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Bytes freshly allocated (pool misses × request size).
    pub alloc_bytes: u64,
    /// Takes served from the pool.
    pub pool_hits: u64,
    /// Takes that fell back to a fresh allocation.
    pub pool_misses: u64,
    /// Bytes currently shelved in the pool.
    pub retained_bytes: u64,
    /// Buffers currently shelved in the pool.
    pub retained_buffers: u64,
}

/// Snapshot the arena counters.
pub fn stats() -> ArenaStats {
    ArenaStats {
        alloc_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        pool_hits: POOL_HITS.load(Ordering::Relaxed),
        pool_misses: POOL_MISSES.load(Ordering::Relaxed),
        retained_bytes: pool().retained_bytes() as u64,
        retained_buffers: pool().retained_buffers() as u64,
    }
}

/// Drop every retained buffer (tests; frees memory, keeps counters).
pub fn clear() {
    pool().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    /// Serializes tests that toggle the global arena switch.
    pub(crate) fn arena_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn dropped_tensor_storage_is_reused() {
        let _g = arena_test_lock();
        set_enabled(true);
        // Other tests share the global pool, so a specific buffer can be
        // stolen between drop and take; retry until we observe reuse.
        let mut reused = false;
        for _ in 0..32 {
            let t = Tensor::full(&[61, 67], 3.0); // distinctive size
            let ptr = t.as_slice().as_ptr();
            drop(t); // storage recycles into the arena
            let before = stats();
            let t2 = Tensor::zeros(&[61, 67]);
            let after = stats();
            assert!(t2.as_slice().iter().all(|&v| v == 0.0), "recycled zeros must be zeroed");
            if t2.as_slice().as_ptr() == ptr {
                assert!(after.pool_hits > before.pool_hits, "ptr reuse must be counted as a hit");
                reused = true;
                break;
            }
        }
        assert!(reused, "dropped storage was never reused across 32 attempts");
    }

    #[test]
    fn live_tensors_never_alias() {
        let _g = arena_test_lock();
        set_enabled(true);
        clear();
        let a = Tensor::full(&[128], 1.0);
        let b = Tensor::full(&[128], 2.0);
        assert_ne!(a.as_slice().as_ptr(), b.as_slice().as_ptr(), "live tensors must not share storage");
        assert!(a.as_slice().iter().all(|&v| v == 1.0));
        assert!(b.as_slice().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn disabled_arena_always_allocates() {
        let _g = arena_test_lock();
        set_enabled(false);
        let before = stats();
        drop(Tensor::zeros(&[256]));
        let t = Tensor::zeros(&[256]);
        let after = stats();
        assert!(after.alloc_bytes >= before.alloc_bytes + 2 * 256 * 4, "every take allocates while disabled");
        drop(t);
        set_enabled(true);
    }

    #[test]
    fn tiny_buffers_are_not_pooled() {
        // Below MIN_POOL_LEN both take and recycle bypass the pool entirely:
        // the buffer handed out is always a fresh allocation.
        let _g = arena_test_lock();
        set_enabled(true);
        let before = stats();
        let v = take_zeroed(2);
        recycle(v);
        let after = stats();
        assert!(after.alloc_bytes >= before.alloc_bytes + 2 * 4, "tiny takes always allocate");
    }
}
