//! Random tensor construction with a deterministic, seedable generator.
//!
//! Everything in this repository that draws randomness (weight init, the
//! traffic simulator, VAE reparameterization noise) threads a [`SeededRng`]
//! so experiments are exactly reproducible.

use crate::tensor::Tensor;

/// A seedable RNG with the sampling helpers the project needs.
///
/// The core generator is SplitMix64 (Steele, Lea & Flood 2014): one 64-bit
/// state word advanced by a Weyl increment and scrambled by two xor-shift
/// multiplies. It passes BigCrush, is trivially seedable from any 64-bit
/// value (including 0), and every draw is a constant-time pure function of
/// the state — exactly what reproducible experiments need, with no
/// external dependency.
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: u64,
}

impl SeededRng {
    /// Deterministic generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRng { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f32` in `[0, 1)` using the top 24 bits.
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        if lo == hi {
            return lo;
        }
        lo + (hi - lo) * self.next_f32()
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        // Draw u1 in (0,1] to keep ln() finite.
        let u1: f32 = 1.0 - self.next_f32();
        let u2: f32 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal sample with given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Uniform integer in `[0, n)` (Lemire's multiply-shift; bias is at
    /// most 2^-64 and irrelevant at this project's `n`).
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            // next_f64 is in [0, 1): guarantee `chance(1.0)` is always true.
            self.next_f64();
            return true;
        }
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of indices `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.index(i + 1);
            idx.swap(i, j);
        }
        idx
    }

    /// Split off an independent child generator (for parallel-safe seeding).
    pub fn fork(&mut self) -> SeededRng {
        SeededRng::new(self.next_u64())
    }
}

impl Tensor {
    /// Tensor of uniform samples in `[lo, hi)`.
    pub fn rand_uniform(rng: &mut SeededRng, dims: &[usize], lo: f32, hi: f32) -> Tensor {
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|_| rng.uniform(lo, hi)).collect();
        Tensor::from_vec(data, dims)
    }

    /// Tensor of normal samples.
    pub fn rand_normal(rng: &mut SeededRng, dims: &[usize], mean: f32, std: f32) -> Tensor {
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|_| rng.normal_with(mean, std)).collect();
        Tensor::from_vec(data, dims)
    }

    /// Glorot/Xavier uniform init for a layer with the given fan-in/out.
    pub fn glorot_uniform(rng: &mut SeededRng, dims: &[usize], fan_in: usize, fan_out: usize) -> Tensor {
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::rand_uniform(rng, dims, -limit, limit)
    }

    /// He/Kaiming normal init (for ReLU layers).
    pub fn he_normal(rng: &mut SeededRng, dims: &[usize], fan_in: usize) -> Tensor {
        let std = (2.0 / fan_in as f32).sqrt();
        Tensor::rand_normal(rng, dims, 0.0, std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        let ta = Tensor::rand_uniform(&mut a, &[100], -1.0, 1.0);
        let tb = Tensor::rand_uniform(&mut b, &[100], -1.0, 1.0);
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let ta = Tensor::rand_uniform(&mut a, &[50], 0.0, 1.0);
        let tb = Tensor::rand_uniform(&mut b, &[50], 0.0, 1.0);
        assert_ne!(ta, tb);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SeededRng::new(3);
        let t = Tensor::rand_uniform(&mut rng, &[1000], -2.0, 3.0);
        assert!(t.min() >= -2.0 && t.max() < 3.0);
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = SeededRng::new(9);
        let t = Tensor::rand_normal(&mut rng, &[20000], 1.0, 2.0);
        assert!((t.mean() - 1.0).abs() < 0.1, "mean {}", t.mean());
        assert!((t.std() - 2.0).abs() < 0.1, "std {}", t.std());
        assert!(t.all_finite());
    }

    #[test]
    fn glorot_limit() {
        let mut rng = SeededRng::new(4);
        let t = Tensor::glorot_uniform(&mut rng, &[10, 10], 10, 10);
        let limit = (6.0f32 / 20.0).sqrt();
        assert!(t.max() <= limit && t.min() >= -limit);
    }

    #[test]
    fn permutation_is_bijection() {
        let mut rng = SeededRng::new(8);
        let p = rng.permutation(20);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SeededRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
