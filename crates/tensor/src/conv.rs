//! 2-D convolution kernels (im2col/col2im based), with explicit backward
//! functions used by the autograd layer.
//!
//! Layout conventions (matching the paper's `2×H×W` flow tensors batched to
//! NCHW):
//! * input `[N, C, H, W]`
//! * weight `[OC, C, KH, KW]`
//! * bias `[OC]`
//! * output `[N, OC, OH, OW]`
//!
//! Both `conv2d` and `conv2d_backward` fan out **per sample** across the
//! `muse-parallel` pool: each sample's column buffer comes from the shared
//! scratch pool and its output lands in a disjoint slice, so no floats are
//! shared between jobs and results are bit-identical for any thread count.
//! The backward pass writes per-sample weight/bias partials into
//! per-sample slots and folds them sequentially in sample order afterward,
//! which keeps the accumulation association fixed.

use crate::linalg::{gemm_at_rows, gemm_bt_rows, gemm_rows};
use crate::simd;
use crate::tensor::Tensor;
use muse_obs as obs;
use muse_parallel::{take_uninit, take_zeroed};

/// Static description of a conv2d: geometry only, no parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel height and width.
    pub kernel: (usize, usize),
    /// Stride (rows, cols).
    pub stride: (usize, usize),
    /// Zero padding (rows, cols) applied symmetrically.
    pub padding: (usize, usize),
}

impl Conv2dSpec {
    /// A square-kernel, stride-1 convolution with "same" padding when
    /// `kernel` is odd — the configuration every encoder in this repo uses.
    pub fn same(in_channels: usize, out_channels: usize, kernel: usize) -> Self {
        Conv2dSpec {
            in_channels,
            out_channels,
            kernel: (kernel, kernel),
            stride: (1, 1),
            padding: (kernel / 2, kernel / 2),
        }
    }

    /// Output spatial size for an `h x w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding.0 - self.kernel.0) / self.stride.0 + 1;
        let ow = (w + 2 * self.padding.1 - self.kernel.1) / self.stride.1 + 1;
        (oh, ow)
    }

    /// Number of learnable parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel.0 * self.kernel.1 + self.out_channels
    }

    /// Multiply-accumulate count for an `h x w` input (per sample) — used by
    /// the Table I complexity analysis.
    pub fn macs(&self, h: usize, w: usize) -> usize {
        let (oh, ow) = self.output_hw(h, w);
        oh * ow * self.out_channels * self.in_channels * self.kernel.0 * self.kernel.1
    }
}

/// Unfold one `[C, H, W]` image into columns `[C*KH*KW, OH*OW]`, writing
/// every element of `out` (padding positions get explicit zeros, so `out`
/// may hold garbage from a recycled scratch buffer).
pub fn im2col_into(img: &[f32], c: usize, h: usize, w: usize, spec: &Conv2dSpec, out: &mut [f32]) {
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    let (oh, ow) = spec.output_hw(h, w);
    let cols = oh * ow;
    assert_eq!(out.len(), c * kh * kw * cols, "im2col_into buffer size mismatch");
    for ch in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ch * kh + ki) * kw + kj;
                let base = row * cols;
                for oi in 0..oh {
                    let dst = &mut out[base + oi * ow..base + (oi + 1) * ow];
                    let ii = (oi * sh + ki) as isize - ph as isize;
                    if ii < 0 || ii >= h as isize {
                        dst.fill(0.0);
                        continue;
                    }
                    let src_row = &img[ch * h * w + ii as usize * w..][..w];
                    if sw == 1 {
                        // jj = oj + kj - pw; the valid oj range is contiguous,
                        // so the interior is one memcpy between zero fringes.
                        let lo = (pw as isize - kj as isize).clamp(0, ow as isize) as usize;
                        let hi = ((w + pw) as isize - kj as isize).clamp(lo as isize, ow as isize) as usize;
                        dst[..lo].fill(0.0);
                        dst[hi..].fill(0.0);
                        let off = lo + kj - pw;
                        dst[lo..hi].copy_from_slice(&src_row[off..off + (hi - lo)]);
                    } else {
                        for (oj, d) in dst.iter_mut().enumerate() {
                            let jj = (oj * sw + kj) as isize - pw as isize;
                            *d = if jj < 0 || jj >= w as isize { 0.0 } else { src_row[jj as usize] };
                        }
                    }
                }
            }
        }
    }
}

/// Unfold one `[C, H, W]` image into columns `[C*KH*KW, OH*OW]`.
pub fn im2col(img: &[f32], c: usize, h: usize, w: usize, spec: &Conv2dSpec) -> Tensor {
    let (kh, kw) = spec.kernel;
    let (oh, ow) = spec.output_hw(h, w);
    let rows = c * kh * kw;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    im2col_into(img, c, h, w, spec, &mut out);
    Tensor::from_vec(out, &[rows, cols])
}

/// Fold columns `[C*KH*KW, OH*OW]` back into a `[C, H, W]` image slice,
/// **accumulating** overlapping contributions (adjoint of [`im2col`]).
/// `img` must be zeroed by the caller if a plain fold is wanted.
pub fn col2im_into(cols: &[f32], c: usize, h: usize, w: usize, spec: &Conv2dSpec, img: &mut [f32]) {
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    let (oh, ow) = spec.output_hw(h, w);
    let ncols = oh * ow;
    assert_eq!(cols.len(), c * kh * kw * ncols, "col2im_into column size mismatch");
    assert_eq!(img.len(), c * h * w, "col2im_into image size mismatch");
    for ch in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ch * kh + ki) * kw + kj;
                let base = row * ncols;
                for oi in 0..oh {
                    let ii = (oi * sh + ki) as isize - ph as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    let dst_row = ch * h * w + ii as usize * w;
                    if sw == 1 {
                        // Mirror of the im2col fast path: the valid oj range
                        // is contiguous, so the scatter is one vector
                        // accumulate. Each image element still receives the
                        // same contributions in the same (ki, kj, oi) order
                        // as the scalar loop below.
                        let lo = (pw as isize - kj as isize).clamp(0, ow as isize) as usize;
                        let hi = ((w + pw) as isize - kj as isize).clamp(lo as isize, ow as isize) as usize;
                        let off = lo + kj - pw;
                        simd::add_assign(
                            &mut img[dst_row + off..dst_row + off + (hi - lo)],
                            &cols[base + oi * ow + lo..base + oi * ow + hi],
                        );
                    } else {
                        for oj in 0..ow {
                            let jj = (oj * sw + kj) as isize - pw as isize;
                            if jj < 0 || jj >= w as isize {
                                continue;
                            }
                            img[dst_row + jj as usize] += cols[base + oi * ow + oj];
                        }
                    }
                }
            }
        }
    }
}

/// Fold columns `[C*KH*KW, OH*OW]` back into an image `[C, H, W]`,
/// accumulating overlapping contributions (adjoint of [`im2col`]).
pub fn col2im(cols: &Tensor, c: usize, h: usize, w: usize, spec: &Conv2dSpec) -> Vec<f32> {
    let (kh, kw) = spec.kernel;
    let (oh, ow) = spec.output_hw(h, w);
    assert_eq!(cols.dims(), &[c * kh * kw, oh * ow], "col2im shape mismatch");
    let mut img = vec![0.0f32; c * h * w];
    col2im_into(cols.as_slice(), c, h, w, spec, &mut img);
    img
}

/// Forward conv2d: `[N,C,H,W] * [OC,C,KH,KW] + [OC] -> [N,OC,OH,OW]`.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>, spec: &Conv2dSpec) -> Tensor {
    let dims = input.dims();
    assert_eq!(dims.len(), 4, "conv2d input must be [N,C,H,W], got {}", input.shape());
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(c, spec.in_channels, "conv2d channel mismatch: input {c}, spec {}", spec.in_channels);
    assert_eq!(
        weight.dims(),
        &[spec.out_channels, spec.in_channels, spec.kernel.0, spec.kernel.1],
        "conv2d weight shape mismatch"
    );
    if let Some(b) = bias {
        assert_eq!(b.dims(), &[spec.out_channels], "conv2d bias shape mismatch");
    }
    let (oh, ow) = spec.output_hw(h, w);
    let _t = obs::kernel_timer(
        "tensor.conv2d",
        ((input.len() + weight.len() + n * spec.out_channels * oh * ow) * std::mem::size_of::<f32>()) as u64,
    );
    let oc = spec.out_channels;
    let ksize = c * spec.kernel.0 * spec.kernel.1;
    let (chw, ohw) = (c * h * w, oh * ow);
    // Weight layout [OC, C, KH, KW] is already the [OC, ksize] GEMM operand.
    let wmat = weight.as_slice();
    let bias_s = bias.map(|b| b.as_slice());
    let input_s = input.as_slice();
    let mut out = crate::arena::take_zeroed(n * oc * ohw); // gemm_rows accumulates into zeroes
    muse_parallel::parallel_for_rows(&mut out, oc * ohw, 1, |s0, chunk| {
        let mut cols = take_uninit(ksize * ohw); // im2col_into writes every element
        for (ds, so) in chunk.chunks_mut(oc * ohw).enumerate() {
            let img = &input_s[(s0 + ds) * chw..][..chw];
            im2col_into(img, c, h, w, spec, &mut cols);
            gemm_rows(wmat, &cols, so, 0, ksize, ohw); // so is zeroed
            if let Some(bs) = bias_s {
                for (ocx, orow) in so.chunks_mut(ohw).enumerate() {
                    simd::add_scalar_assign(orow, bs[ocx]);
                }
            }
        }
    });
    Tensor::from_vec(out, &[n, oc, oh, ow])
}

/// Gradients of conv2d given upstream `grad_out [N,OC,OH,OW]`.
///
/// Returns `(grad_input, grad_weight, grad_bias)`.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &Conv2dSpec,
) -> (Tensor, Tensor, Tensor) {
    let dims = input.dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let (oh, ow) = spec.output_hw(h, w);
    assert_eq!(grad_out.dims(), &[n, spec.out_channels, oh, ow], "conv2d_backward grad shape mismatch");
    let _t = obs::kernel_timer(
        "tensor.conv2d_backward",
        ((input.len() + weight.len() + grad_out.len()) * std::mem::size_of::<f32>()) as u64,
    );
    let oc = spec.out_channels;
    let ksize = c * spec.kernel.0 * spec.kernel.1;
    let (chw, ohw) = (c * h * w, oh * ow);
    let wmat = weight.as_slice();
    let input_s = input.as_slice();
    let go_all = grad_out.as_slice();
    let mut grad_input = crate::arena::take_zeroed(n * chw); // col2im accumulates into zeroes
                                                             // Per-sample partials: each job owns one slot, the fold below walks the
                                                             // slots in sample order so the accumulation association never depends
                                                             // on how jobs were scheduled. Every slot is fully assigned (gemm_bt
                                                             // assigns, db is a plain store), so recycled contents are fine.
    let mut dw_all = crate::arena::take_uninit(n * oc * ksize);
    let mut db_all = crate::arena::take_uninit(n * oc);
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = grad_input
        .chunks_mut(chw)
        .zip(dw_all.chunks_mut(oc * ksize))
        .zip(db_all.chunks_mut(oc))
        .enumerate()
        .map(|(s, ((gi, dw), db))| {
            Box::new(move || {
                let img = &input_s[s * chw..][..chw];
                let go = &go_all[s * oc * ohw..][..oc * ohw];
                let mut cols = take_uninit(ksize * ohw); // im2col_into writes every element
                im2col_into(img, c, h, w, spec, &mut cols);
                // dW_s = go x cols^T
                gemm_bt_rows(go, &cols, dw, 0, ohw, ksize);
                // db_s = rowsum(go), canonical lane reduction per row
                for (ocx, d) in db.iter_mut().enumerate() {
                    *d = simd::sum(&go[ocx * ohw..][..ohw]);
                }
                // dX_s = col2im(W^T x go)
                let mut dcols = take_zeroed(ksize * ohw);
                gemm_at_rows(wmat, go, &mut dcols, 0, oc, ksize, ohw);
                col2im_into(&dcols, c, h, w, spec, gi);
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    muse_parallel::join_all(jobs);
    let mut grad_wmat = crate::arena::take_zeroed(oc * ksize);
    for dw in dw_all.chunks(oc * ksize) {
        simd::add_assign(&mut grad_wmat, dw);
    }
    let mut grad_bias = crate::arena::take_zeroed(oc);
    for db in db_all.chunks(oc) {
        simd::add_assign(&mut grad_bias, db);
    }
    crate::arena::recycle(dw_all);
    crate::arena::recycle(db_all);
    (
        Tensor::from_vec(grad_input, dims),
        Tensor::from_vec(grad_wmat, &[oc, spec.in_channels, spec.kernel.0, spec.kernel.1]),
        Tensor::from_vec(grad_bias, &[oc]),
    )
}

/// Naive direct convolution used by tests to validate the im2col kernel.
pub fn conv2d_reference(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>, spec: &Conv2dSpec) -> Tensor {
    let dims = input.dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let (oh, ow) = spec.output_hw(h, w);
    let mut out = Tensor::zeros(&[n, spec.out_channels, oh, ow]);
    for s in 0..n {
        for oc in 0..spec.out_channels {
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = bias.map_or(0.0, |b| b.as_slice()[oc]);
                    for ch in 0..c {
                        for ki in 0..spec.kernel.0 {
                            for kj in 0..spec.kernel.1 {
                                let ii = (oi * spec.stride.0 + ki) as isize - spec.padding.0 as isize;
                                let jj = (oj * spec.stride.1 + kj) as isize - spec.padding.1 as isize;
                                if ii >= 0 && (ii as usize) < h && jj >= 0 && (jj as usize) < w {
                                    acc += input.at(&[s, ch, ii as usize, jj as usize])
                                        * weight.at(&[oc, ch, ki, kj]);
                                }
                            }
                        }
                    }
                    *out.at_mut(&[s, oc, oi, oj]) = acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::SeededRng;

    fn rand_tensor(rng: &mut SeededRng, dims: &[usize]) -> Tensor {
        Tensor::rand_uniform(rng, dims, -1.0, 1.0)
    }

    #[test]
    fn output_geometry() {
        let spec = Conv2dSpec::same(3, 8, 3);
        assert_eq!(spec.output_hw(10, 20), (10, 20));
        let strided =
            Conv2dSpec { in_channels: 1, out_channels: 1, kernel: (3, 3), stride: (2, 2), padding: (1, 1) };
        assert_eq!(strided.output_hw(8, 8), (4, 4));
        assert_eq!(spec.param_count(), 8 * 3 * 9 + 8);
        assert!(spec.macs(10, 20) > 0);
    }

    #[test]
    fn conv_matches_reference() {
        let mut rng = SeededRng::new(7);
        let spec = Conv2dSpec::same(2, 3, 3);
        let x = rand_tensor(&mut rng, &[2, 2, 5, 6]);
        let w = rand_tensor(&mut rng, &[3, 2, 3, 3]);
        let b = rand_tensor(&mut rng, &[3]);
        let fast = conv2d(&x, &w, Some(&b), &spec);
        let slow = conv2d_reference(&x, &w, Some(&b), &spec);
        assert!(fast.approx_eq(&slow, 1e-4), "max diff {}", fast.max_abs_diff(&slow));
    }

    #[test]
    fn conv_strided_matches_reference() {
        let mut rng = SeededRng::new(11);
        let spec =
            Conv2dSpec { in_channels: 1, out_channels: 2, kernel: (3, 2), stride: (2, 1), padding: (1, 0) };
        let x = rand_tensor(&mut rng, &[1, 1, 7, 5]);
        let w = rand_tensor(&mut rng, &[2, 1, 3, 2]);
        let fast = conv2d(&x, &w, None, &spec);
        let slow = conv2d_reference(&x, &w, None, &spec);
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn im2col_overwrites_dirty_buffers() {
        // Scratch buffers come back dirty; im2col_into must be a total
        // overwrite including the zero-padding fringe.
        let mut rng = SeededRng::new(13);
        let spec = Conv2dSpec::same(2, 1, 3);
        let (c, h, w) = (2, 4, 5);
        let x = rand_tensor(&mut rng, &[c, h, w]);
        let clean = im2col(x.as_slice(), c, h, w, &spec);
        let mut dirty = vec![f32::NAN; clean.len()];
        im2col_into(x.as_slice(), c, h, w, &spec, &mut dirty);
        assert_eq!(clean.as_slice(), &dirty[..]);
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // 1x1 kernel with weight 1 is the identity map.
        let spec =
            Conv2dSpec { in_channels: 1, out_channels: 1, kernel: (1, 1), stride: (1, 1), padding: (0, 0) };
        let x = Tensor::arange(0.0, 12.0).reshape(&[1, 1, 3, 4]);
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let y = conv2d(&x, &w, None, &spec);
        assert!(y.approx_eq(&x, 1e-6));
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property the backward pass relies on.
        let mut rng = SeededRng::new(3);
        let spec = Conv2dSpec::same(2, 1, 3);
        let (c, h, w) = (2, 4, 5);
        let x = rand_tensor(&mut rng, &[c, h, w]);
        let cols_shape = [c * 9, h * w];
        let y = rand_tensor(&mut rng, &cols_shape);
        let ix = im2col(x.as_slice(), c, h, w, &spec);
        let lhs: f32 = ix.as_slice().iter().zip(y.as_slice()).map(|(&a, &b)| a * b).sum();
        let cy = col2im(&y, c, h, w, &spec);
        let rhs: f32 = x.as_slice().iter().zip(&cy).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch {lhs} vs {rhs}");
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = SeededRng::new(5);
        let spec = Conv2dSpec::same(1, 2, 3);
        let x = rand_tensor(&mut rng, &[1, 1, 4, 4]);
        let w = rand_tensor(&mut rng, &[2, 1, 3, 3]);
        let b = rand_tensor(&mut rng, &[2]);
        // Loss = sum(conv(x)); upstream gradient of ones.
        let y = conv2d(&x, &w, Some(&b), &spec);
        let go = Tensor::ones(y.dims());
        let (gx, gw, gb) = conv2d_backward(&x, &w, &go, &spec);
        let eps = 1e-2f32;
        // Check a sample of input positions.
        for &i in &[0usize, 5, 10, 15] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (conv2d(&xp, &w, Some(&b), &spec).sum() - conv2d(&xm, &w, Some(&b), &spec).sum())
                / (2.0 * eps);
            assert!((num - gx.as_slice()[i]).abs() < 1e-2, "input grad {i}: {num} vs {}", gx.as_slice()[i]);
        }
        for &i in &[0usize, 4, 9, 17] {
            let mut wp = w.clone();
            wp.as_mut_slice()[i] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[i] -= eps;
            let num = (conv2d(&x, &wp, Some(&b), &spec).sum() - conv2d(&x, &wm, Some(&b), &spec).sum())
                / (2.0 * eps);
            assert!((num - gw.as_slice()[i]).abs() < 1e-2, "weight grad {i}: {num} vs {}", gw.as_slice()[i]);
        }
        // Bias gradient of a sum-loss is the number of output positions.
        assert!((gb.as_slice()[0] - 16.0).abs() < 1e-3);
    }

    #[test]
    fn multi_sample_backward_matches_per_sample() {
        // Batched backward (parallel per-sample jobs + ordered fold) must
        // agree with summing per-sample single-batch calls in order.
        let mut rng = SeededRng::new(17);
        let spec = Conv2dSpec::same(2, 3, 3);
        let (n, c, h, w) = (5, 2, 4, 6);
        let x = rand_tensor(&mut rng, &[n, c, h, w]);
        let wt = rand_tensor(&mut rng, &[3, c, 3, 3]);
        let go = rand_tensor(&mut rng, &[n, 3, h, w]);
        let (gx, gw, gb) = conv2d_backward(&x, &wt, &go, &spec);
        let mut gw_sum = Tensor::zeros(gw.dims());
        let mut gb_sum = Tensor::zeros(gb.dims());
        for s in 0..n {
            let xs =
                Tensor::from_vec(x.as_slice()[s * c * h * w..(s + 1) * c * h * w].to_vec(), &[1, c, h, w]);
            let gos =
                Tensor::from_vec(go.as_slice()[s * 3 * h * w..(s + 1) * 3 * h * w].to_vec(), &[1, 3, h, w]);
            let (gxs, gws, gbs) = conv2d_backward(&xs, &wt, &gos, &spec);
            assert_eq!(&gx.as_slice()[s * c * h * w..(s + 1) * c * h * w], gxs.as_slice());
            gw_sum.add_assign(&gws);
            gb_sum.add_assign(&gbs);
        }
        assert!(gw.approx_eq(&gw_sum, 1e-5));
        assert!(gb.approx_eq(&gb_sum, 1e-5));
    }
}
