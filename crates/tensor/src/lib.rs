#![warn(missing_docs)]

//! # muse-tensor
//!
//! Dense, row-major, `f32` tensor substrate for the MUSE-Net reproduction.
//!
//! The crate deliberately keeps a small surface: contiguous tensors, numpy
//! style broadcasting, matrix multiplication, and the im2col-based 2-D
//! convolution kernels that the CNN encoders of MUSE-Net and its baselines
//! are built from. Everything is CPU-only `f32`; the training workloads in
//! this repository are sized for that.
//!
//! ## Conventions
//!
//! * Tensors are always contiguous in row-major (C) order. Operations that
//!   would produce a view (`transpose`, `permute`, slicing) materialize a new
//!   tensor instead — simplicity over zero-copy, which profiling showed is
//!   irrelevant at the grid sizes used here.
//! * Shape errors are programming errors and panic with a descriptive
//!   message; fallible variants are provided (`try_*`) where a caller may
//!   reasonably recover (e.g. parsing user-provided shapes).
//! * Broadcasting follows numpy rules: trailing dimensions are aligned, a
//!   dimension of 1 stretches.
//!
//! ```
//! use muse_tensor::Tensor;
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::full(&[2], 10.0);
//! let c = a.add(&b); // broadcast over rows
//! assert_eq!(c.as_slice(), &[11.0, 12.0, 13.0, 14.0]);
//! ```

pub mod arena;
pub mod conv;
pub mod init;
pub mod linalg;
pub mod ops;
pub mod reduce;
pub mod shape;
pub mod simd;
pub mod tensor;

pub use conv::Conv2dSpec;
pub use shape::{broadcast_shapes, Shape, ShapeError};
pub use tensor::Tensor;
