//! Runtime-dispatched SIMD micro-kernels: AVX2 (8-wide f32) with
//! bit-identical scalar twins.
//!
//! Every public kernel in this module exists in two implementations — a
//! portable scalar one and an `std::arch` AVX2 one — and the pair is
//! written so that **both produce the same bits for every input**. That is
//! the contract the rest of the crate builds on: flipping `MUSE_SIMD`, or
//! running on a machine without AVX2, changes throughput but never a single
//! output bit, just like `MUSE_THREADS` (see `crates/tensor/tests/
//! determinism.rs`, which sweeps both).
//!
//! ## How bit-identity is preserved
//!
//! * **Elementwise kernels** (`binary`, `axpy`, `scale`, …) apply one
//!   floating-point expression per element; vector lanes evaluate the same
//!   expression, so lane width is unobservable.
//! * **Accumulating kernels** (`gemm_tile4` & friends) vectorize along the
//!   *output* axis: each output element still receives its contributions in
//!   ascending-`p` order, exactly like the scalar loop.
//! * **Reductions** (`sum`, `dot`, `sse`, `sum_squares`, `sum_sq_dev`) use a
//!   fixed [`LANES`]-wide accumulator layout: lane `l` sums elements
//!   `l, l+LANES, l+2·LANES, …`, the tail folds into lanes `0..r`, and the
//!   horizontal sum walks the lane array left to right. The scalar twin
//!   implements the identical association with a `[f32; LANES]` array, so
//!   the result depends only on the data — not on which unit computed it.
//! * **No fused multiply-add.** FMA rounds once where `mul`+`add` round
//!   twice, so `_mm256_fmadd_ps` would make the SIMD path drift from the
//!   scalar one. The dispatch gate still requires the FMA CPU flag (the
//!   level is reported as `avx2+fma`) purely to target modern cores; the
//!   kernels themselves stick to separately-rounded `mul`/`add`.
//!
//! ## Dispatch
//!
//! [`detected_level`] is computed once per process: `MUSE_SIMD=0` (or
//! `off`/`false`) forces [`Level::Scalar`]; otherwise the CPU is probed for
//! AVX2+FMA. The result is exported as the `simd.level` gauge
//! (`muse_simd_level` in Prometheus exposition). Tests flip paths
//! in-process with [`with_level`], which can lower but never exceed the
//! detected capability.

use muse_obs as obs;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Instruction-set level a kernel call can run at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Portable scalar implementations (the fallback everywhere).
    Scalar,
    /// 8-wide f32 AVX2 kernels, gated on the `avx2` **and** `fma` CPU
    /// flags. (The kernels use separate mul/add — see the module docs.)
    Avx2Fma,
}

impl Level {
    /// Stable human-readable name, as reported in run manifests, `/stats`
    /// and the `muse_simd_level` gauge docs: `"scalar"` or `"avx2+fma"`.
    pub fn name(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Avx2Fma => "avx2+fma",
        }
    }
}

static DETECTED: OnceLock<Level> = OnceLock::new();

const OVERRIDE_NONE: u8 = 0;
const OVERRIDE_SCALAR: u8 = 1;
const OVERRIDE_BEST: u8 = 2;

/// Process-wide test override (not thread-local: kernels run on pool
/// worker threads, which must observe the override too). Safe because both
/// paths are bit-identical — concurrent tests can only change *which* unit
/// computes, never what it computes.
static OVERRIDE: AtomicU8 = AtomicU8::new(OVERRIDE_NONE);

fn env_disabled() -> bool {
    match std::env::var("MUSE_SIMD") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            v == "0" || v == "off" || v == "false"
        }
        Err(_) => false,
    }
}

#[cfg(target_arch = "x86_64")]
fn cpu_level() -> Level {
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        Level::Avx2Fma
    } else {
        Level::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn cpu_level() -> Level {
    Level::Scalar
}

/// The level this process dispatches to by default: CPU capability masked
/// by the `MUSE_SIMD` environment knob (read once, like `MUSE_ARENA`).
/// First call publishes the `simd.level` gauge (1 = `avx2+fma`,
/// 0 = `scalar`).
pub fn detected_level() -> Level {
    *DETECTED.get_or_init(|| {
        let lvl = if env_disabled() { Level::Scalar } else { cpu_level() };
        obs::gauge("simd.level").set(match lvl {
            Level::Avx2Fma => 1.0,
            Level::Scalar => 0.0,
        });
        lvl
    })
}

/// Name of the detected level — `"avx2+fma"` or `"scalar"`.
pub fn level_name() -> &'static str {
    detected_level().name()
}

/// The level kernel calls dispatch to right now: a [`with_level`] override
/// if one is active, else [`detected_level`]. An override can only lower
/// the level; requesting [`Level::Avx2Fma`] on a scalar-only process stays
/// scalar.
#[inline]
pub fn active_level() -> Level {
    match OVERRIDE.load(Ordering::Relaxed) {
        OVERRIDE_SCALAR => Level::Scalar,
        _ => detected_level(),
    }
}

/// Run `f` with kernel dispatch forced to `level` (clamped to the detected
/// capability), restoring the previous override on exit — including on
/// panic. Used by the determinism sweeps to compare SIMD-on and SIMD-off
/// outputs inside one process.
pub fn with_level<R>(level: Level, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let code = match level {
        Level::Scalar => OVERRIDE_SCALAR,
        Level::Avx2Fma => OVERRIDE_BEST,
    };
    let _restore = Restore(OVERRIDE.swap(code, Ordering::Relaxed));
    f()
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn use_avx2() -> bool {
    matches!(active_level(), Level::Avx2Fma)
}

/// Accumulator lanes of the canonical reduction layout. 32 = four AVX2
/// vectors, enough independent chains to hide `vaddps` latency; the scalar
/// twin uses a `[f32; 32]` array with the same per-lane association.
pub const LANES: usize = 32;

/// Sequential left-to-right fold of the lane array — the one horizontal-sum
/// order both implementations share.
#[inline]
fn hsum(lanes: &[f32; LANES]) -> f32 {
    lanes.iter().copied().fold(0.0, |a, b| a + b)
}

// --------------------------------------------------------------- reductions

macro_rules! lane_reduce_scalar {
    ($s:expr, $($tail:tt)*) => {{
        let map = $($tail)*;
        let mut lanes = [0.0f32; LANES];
        let mut it = $s.chunks_exact(LANES);
        for c in &mut it {
            for (l, i) in lanes.iter_mut().zip(0..LANES) {
                *l += map(c, i);
            }
        }
        let rem = it.remainder();
        for (l, i) in lanes.iter_mut().zip(0..rem.len()) {
            *l += map(rem, i);
        }
        hsum(&lanes)
    }};
}

fn sum_scalar(s: &[f32]) -> f32 {
    lane_reduce_scalar!(s, |c: &[f32], i: usize| c[i])
}

fn sum_squares_scalar(s: &[f32]) -> f32 {
    lane_reduce_scalar!(s, |c: &[f32], i: usize| c[i] * c[i])
}

fn sum_sq_dev_scalar(s: &[f32], m: f32) -> f32 {
    lane_reduce_scalar!(s, |c: &[f32], i: usize| (c[i] - m) * (c[i] - m))
}

fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    let mut ia = a.chunks_exact(LANES);
    let mut ib = b.chunks_exact(LANES);
    for (ca, cb) in (&mut ia).zip(&mut ib) {
        for ((l, &x), &y) in lanes.iter_mut().zip(ca).zip(cb) {
            *l += x * y;
        }
    }
    for ((l, &x), &y) in lanes.iter_mut().zip(ia.remainder()).zip(ib.remainder()) {
        *l += x * y;
    }
    hsum(&lanes)
}

fn sse_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    let mut ia = a.chunks_exact(LANES);
    let mut ib = b.chunks_exact(LANES);
    for (ca, cb) in (&mut ia).zip(&mut ib) {
        for ((l, &x), &y) in lanes.iter_mut().zip(ca).zip(cb) {
            *l += (x - y) * (x - y);
        }
    }
    for ((l, &x), &y) in lanes.iter_mut().zip(ia.remainder()).zip(ib.remainder()) {
        *l += (x - y) * (x - y);
    }
    hsum(&lanes)
}

/// Sum of all elements with the canonical lane association (see module
/// docs). **Not** the plain sequential sum: callers switching to this
/// kernel change their result bits once, but the result is then stable
/// across SIMD levels and thread counts.
pub fn sum(s: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        return unsafe { avx2::sum(s) };
    }
    sum_scalar(s)
}

/// `Σ s[i]²` with the canonical lane association.
pub fn sum_squares(s: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        return unsafe { avx2::sum_squares(s) };
    }
    sum_squares_scalar(s)
}

/// `Σ (s[i] − m)²` with the canonical lane association.
pub fn sum_sq_dev(s: &[f32], m: f32) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        return unsafe { avx2::sum_sq_dev(s, m) };
    }
    sum_sq_dev_scalar(s, m)
}

/// Dot product with the canonical lane association. Slices must have equal
/// length.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "simd::dot length mismatch");
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        return unsafe { avx2::dot(a, b) };
    }
    dot_scalar(a, b)
}

/// `Σ (a[i] − b[i])²` with the canonical lane association. Slices must have
/// equal length.
pub fn sse(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "simd::sse length mismatch");
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        return unsafe { avx2::sse(a, b) };
    }
    sse_scalar(a, b)
}

// -------------------------------------------------------------- elementwise

/// Binary elementwise operation selector for [`binary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `x + y`
    Add,
    /// `x - y`
    Sub,
    /// `x * y`
    Mul,
    /// `x / y`
    Div,
}

impl BinOp {
    /// The scalar expression both implementations evaluate per element.
    #[inline]
    pub fn apply(self, x: f32, y: f32) -> f32 {
        match self {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
        }
    }
}

fn binary_scalar(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
    macro_rules! lp {
        ($e:expr) => {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = $e(x, y);
            }
        };
    }
    match op {
        BinOp::Add => lp!(|x, y| x + y),
        BinOp::Sub => lp!(|x, y| x - y),
        BinOp::Mul => lp!(|x, y| x * y),
        BinOp::Div => lp!(|x, y| x / y),
    }
}

/// `out[i] = op(a[i], b[i])`. All slices must have the same length.
pub fn binary(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), out.len(), "simd::binary length mismatch");
    assert_eq!(b.len(), out.len(), "simd::binary length mismatch");
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        return unsafe { avx2::binary(op, a, b, out) };
    }
    binary_scalar(op, a, b, out)
}

fn axpy_scalar(dst: &mut [f32], s: f32, src: &[f32]) {
    for (d, &x) in dst.iter_mut().zip(src) {
        *d += s * x;
    }
}

/// `dst[i] += s * src[i]` (the optimizer/gradient-fold primitive).
pub fn axpy(dst: &mut [f32], s: f32, src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "simd::axpy length mismatch");
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        return unsafe { avx2::axpy(dst, s, src) };
    }
    axpy_scalar(dst, s, src)
}

fn add_assign_scalar(dst: &mut [f32], src: &[f32]) {
    for (d, &x) in dst.iter_mut().zip(src) {
        *d += x;
    }
}

/// `dst[i] += src[i]` (col2im interiors, sample-ordered gradient folds).
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "simd::add_assign length mismatch");
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        return unsafe { avx2::add_assign(dst, src) };
    }
    add_assign_scalar(dst, src)
}

fn scale_scalar(dst: &mut [f32], s: f32) {
    for d in dst {
        *d *= s;
    }
}

/// `dst[i] *= s`.
pub fn scale(dst: &mut [f32], s: f32) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        return unsafe { avx2::scale(dst, s) };
    }
    scale_scalar(dst, s)
}

fn add_scalar_assign_scalar(dst: &mut [f32], s: f32) {
    for d in dst {
        *d += s;
    }
}

/// `dst[i] += s` (conv2d bias rows).
pub fn add_scalar_assign(dst: &mut [f32], s: f32) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        return unsafe { avx2::add_scalar_assign(dst, s) };
    }
    add_scalar_assign_scalar(dst, s)
}

// --------------------------------------------------------- GEMM micro-tiles

fn gemm_tile4_scalar(a: [&[f32]; 4], p0: usize, p1: usize, b: &[f32], n: usize, o: [&mut [f32]; 4]) {
    let [a0, a1, a2, a3] = a;
    let [o0, o1, o2, o3] = o;
    for p in p0..p1 {
        let brow = &b[p * n..][..n];
        let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
        for ((((x0, x1), x2), x3), &bv) in
            o0.iter_mut().zip(o1.iter_mut()).zip(o2.iter_mut()).zip(o3.iter_mut()).zip(brow)
        {
            *x0 += v0 * bv;
            *x1 += v1 * bv;
            *x2 += v2 * bv;
            *x3 += v3 * bv;
        }
    }
}

/// One `k`-block update of a four-row register tile:
/// `o[r][j] += a[r][p] · b[p·n + j]` for `p` ascending over `p0..p1`.
/// Each output element accumulates in ascending-`p` order on both paths, so
/// the tile is bit-identical to four independent scalar row updates.
pub fn gemm_tile4(a: [&[f32]; 4], p0: usize, p1: usize, b: &[f32], n: usize, o: [&mut [f32]; 4]) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        return unsafe { avx2::gemm_tile4(a, p0, p1, b, n, o) };
    }
    gemm_tile4_scalar(a, p0, p1, b, n, o)
}

fn gemm_tile1_scalar(arow: &[f32], p0: usize, p1: usize, b: &[f32], n: usize, orow: &mut [f32]) {
    for p in p0..p1 {
        let v = arow[p];
        let brow = &b[p * n..][..n];
        for (x, &bv) in orow.iter_mut().zip(brow) {
            *x += v * bv;
        }
    }
}

/// Single-row variant of [`gemm_tile4`] for remainder rows.
pub fn gemm_tile1(arow: &[f32], p0: usize, p1: usize, b: &[f32], n: usize, orow: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        return unsafe { avx2::gemm_tile1(arow, p0, p1, b, n, orow) };
    }
    gemm_tile1_scalar(arow, p0, p1, b, n, orow)
}

#[allow(clippy::too_many_arguments)]
fn gemm_tile4_at_scalar(
    a: &[f32],
    astride: usize,
    base: usize,
    p0: usize,
    p1: usize,
    b: &[f32],
    n: usize,
    o: [&mut [f32]; 4],
) {
    let [o0, o1, o2, o3] = o;
    for p in p0..p1 {
        let acol = &a[p * astride + base..][..4];
        let brow = &b[p * n..][..n];
        let (v0, v1, v2, v3) = (acol[0], acol[1], acol[2], acol[3]);
        for ((((x0, x1), x2), x3), &bv) in
            o0.iter_mut().zip(o1.iter_mut()).zip(o2.iter_mut()).zip(o3.iter_mut()).zip(brow)
        {
            *x0 += v0 * bv;
            *x1 += v1 * bv;
            *x2 += v2 * bv;
            *x3 += v3 * bv;
        }
    }
}

/// [`gemm_tile4`] with the A operand read column-wise (`Aᵀ·B` kernels):
/// row `r`'s multiplier at step `p` is `a[p·astride + base + r]`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tile4_at(
    a: &[f32],
    astride: usize,
    base: usize,
    p0: usize,
    p1: usize,
    b: &[f32],
    n: usize,
    o: [&mut [f32]; 4],
) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        return unsafe { avx2::gemm_tile4_at(a, astride, base, p0, p1, b, n, o) };
    }
    gemm_tile4_at_scalar(a, astride, base, p0, p1, b, n, o)
}

#[allow(clippy::too_many_arguments)]
fn gemm_tile1_at_scalar(
    a: &[f32],
    astride: usize,
    base: usize,
    p0: usize,
    p1: usize,
    b: &[f32],
    n: usize,
    orow: &mut [f32],
) {
    for p in p0..p1 {
        let v = a[p * astride + base];
        let brow = &b[p * n..][..n];
        for (x, &bv) in orow.iter_mut().zip(brow) {
            *x += v * bv;
        }
    }
}

/// Single-row variant of [`gemm_tile4_at`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_tile1_at(
    a: &[f32],
    astride: usize,
    base: usize,
    p0: usize,
    p1: usize,
    b: &[f32],
    n: usize,
    orow: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        return unsafe { avx2::gemm_tile1_at(a, astride, base, p0, p1, b, n, orow) };
    }
    gemm_tile1_at_scalar(a, astride, base, p0, p1, b, n, orow)
}

// --------------------------------------------------- fused bias+activation

/// Activation selector for the fused bias+activation kernels. Only the
/// variants whose forward/backward are single blend/multiply expressions
/// are here; transcendental activations stay on the scalar path in
/// `muse-autograd`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// Pass-through: the kernel is just the broadcast bias add.
    Identity,
    /// `max(x, 0)`.
    Relu,
    /// `x` for `x > 0`, `slope·x` otherwise (`slope > 0`).
    LeakyRelu(f32),
}

fn bias_act_forward_scalar(out: &mut [f32], h: &[f32], b: &[f32], act: Activation) {
    let cols = b.len();
    macro_rules! rows {
        ($e:expr) => {
            for (orow, hrow) in out.chunks_mut(cols).zip(h.chunks(cols)) {
                for ((o, &hv), &bv) in orow.iter_mut().zip(hrow).zip(b) {
                    *o = $e(hv + bv);
                }
            }
        };
    }
    match act {
        Activation::Identity => rows!(|x: f32| x),
        Activation::Relu => rows!(|x: f32| x.max(0.0)),
        Activation::LeakyRelu(s) => rows!(|x: f32| if x > 0.0 { x } else { s * x }),
    }
}

/// Fused `out = act(h + b)` over a `[rows, cols]` matrix `h` with a
/// `[cols]` bias `b` (`out.len() == h.len()`, `cols == b.len()`). The
/// per-element expressions match `muse-autograd`'s unfused activation maps.
pub fn bias_act_forward(out: &mut [f32], h: &[f32], b: &[f32], act: Activation) {
    assert_eq!(out.len(), h.len(), "bias_act_forward length mismatch");
    if b.is_empty() {
        return;
    }
    assert_eq!(h.len() % b.len(), 0, "bias_act_forward: rows not integral");
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        return unsafe { avx2::bias_act_forward(out, h, b, act) };
    }
    bias_act_forward_scalar(out, h, b, act)
}

fn bias_act_backward_scalar(gh: &mut [f32], gb: &mut [f32], g: &[f32], y: &[f32], act: Activation) {
    let cols = gb.len();
    macro_rules! rows {
        ($e:expr) => {
            for (ghrow, (grow, yrow)) in gh.chunks_mut(cols).zip(g.chunks(cols).zip(y.chunks(cols))) {
                for (((d, acc), &gv), &yv) in ghrow.iter_mut().zip(gb.iter_mut()).zip(grow).zip(yrow) {
                    let v = $e(gv, yv);
                    *d = v;
                    *acc += v;
                }
            }
        };
    }
    match act {
        Activation::Identity => rows!(|g: f32, _y: f32| g),
        Activation::Relu => rows!(|g: f32, y: f32| g * if y > 0.0 { 1.0 } else { 0.0 }),
        Activation::LeakyRelu(s) => rows!(|g: f32, y: f32| g * if y > 0.0 { 1.0 } else { s }),
    }
}

/// Fused backward of [`bias_act_forward`]: writes the input gradient
/// `gh[i] = g[i] · act'(y[i])` and accumulates the bias gradient column
/// sums into `gb` (which the caller zeroes) over ascending rows — the same
/// association as a `sum_to(&[cols])` fold.
pub fn bias_act_backward(gh: &mut [f32], gb: &mut [f32], g: &[f32], y: &[f32], act: Activation) {
    assert_eq!(gh.len(), g.len(), "bias_act_backward length mismatch");
    assert_eq!(gh.len(), y.len(), "bias_act_backward length mismatch");
    if gb.is_empty() {
        return;
    }
    assert_eq!(gh.len() % gb.len(), 0, "bias_act_backward: rows not integral");
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        return unsafe { avx2::bias_act_backward(gh, gb, g, y, act) };
    }
    bias_act_backward_scalar(gh, gb, g, y, act)
}

// ------------------------------------------------------------- AVX2 kernels

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! The `std::arch` implementations. Each function mirrors its scalar
    //! twin's per-element operation sequence exactly; see the module docs
    //! for the argument. All are `#[target_feature(enable = "avx2,fma")]`
    //! and only called behind the runtime feature check in the dispatchers.

    use super::{hsum, Activation, BinOp, LANES};
    use std::arch::x86_64::*;

    /// Width of one AVX2 f32 vector.
    const W: usize = 8;

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sum(s: &[f32]) -> f32 {
        let p = s.as_ptr();
        let blocks = s.len() / LANES;
        let (mut a0, mut a1, mut a2, mut a3) =
            (_mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps());
        for t in 0..blocks {
            let q = p.add(t * LANES);
            a0 = _mm256_add_ps(a0, _mm256_loadu_ps(q));
            a1 = _mm256_add_ps(a1, _mm256_loadu_ps(q.add(W)));
            a2 = _mm256_add_ps(a2, _mm256_loadu_ps(q.add(2 * W)));
            a3 = _mm256_add_ps(a3, _mm256_loadu_ps(q.add(3 * W)));
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), a0);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(W), a1);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(2 * W), a2);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(3 * W), a3);
        for (l, &x) in lanes.iter_mut().zip(&s[blocks * LANES..]) {
            *l += x;
        }
        hsum(&lanes)
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sum_squares(s: &[f32]) -> f32 {
        let p = s.as_ptr();
        let blocks = s.len() / LANES;
        let (mut a0, mut a1, mut a2, mut a3) =
            (_mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps());
        for t in 0..blocks {
            let q = p.add(t * LANES);
            let (x0, x1, x2, x3) = (
                _mm256_loadu_ps(q),
                _mm256_loadu_ps(q.add(W)),
                _mm256_loadu_ps(q.add(2 * W)),
                _mm256_loadu_ps(q.add(3 * W)),
            );
            a0 = _mm256_add_ps(a0, _mm256_mul_ps(x0, x0));
            a1 = _mm256_add_ps(a1, _mm256_mul_ps(x1, x1));
            a2 = _mm256_add_ps(a2, _mm256_mul_ps(x2, x2));
            a3 = _mm256_add_ps(a3, _mm256_mul_ps(x3, x3));
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), a0);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(W), a1);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(2 * W), a2);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(3 * W), a3);
        for (l, &x) in lanes.iter_mut().zip(&s[blocks * LANES..]) {
            *l += x * x;
        }
        hsum(&lanes)
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sum_sq_dev(s: &[f32], m: f32) -> f32 {
        let p = s.as_ptr();
        let mv = _mm256_set1_ps(m);
        let blocks = s.len() / LANES;
        let (mut a0, mut a1, mut a2, mut a3) =
            (_mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps());
        for t in 0..blocks {
            let q = p.add(t * LANES);
            let d0 = _mm256_sub_ps(_mm256_loadu_ps(q), mv);
            let d1 = _mm256_sub_ps(_mm256_loadu_ps(q.add(W)), mv);
            let d2 = _mm256_sub_ps(_mm256_loadu_ps(q.add(2 * W)), mv);
            let d3 = _mm256_sub_ps(_mm256_loadu_ps(q.add(3 * W)), mv);
            a0 = _mm256_add_ps(a0, _mm256_mul_ps(d0, d0));
            a1 = _mm256_add_ps(a1, _mm256_mul_ps(d1, d1));
            a2 = _mm256_add_ps(a2, _mm256_mul_ps(d2, d2));
            a3 = _mm256_add_ps(a3, _mm256_mul_ps(d3, d3));
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), a0);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(W), a1);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(2 * W), a2);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(3 * W), a3);
        for (l, &x) in lanes.iter_mut().zip(&s[blocks * LANES..]) {
            *l += (x - m) * (x - m);
        }
        hsum(&lanes)
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let blocks = a.len() / LANES;
        let (mut a0, mut a1, mut a2, mut a3) =
            (_mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps());
        for t in 0..blocks {
            let (qa, qb) = (pa.add(t * LANES), pb.add(t * LANES));
            a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_loadu_ps(qa), _mm256_loadu_ps(qb)));
            a1 = _mm256_add_ps(a1, _mm256_mul_ps(_mm256_loadu_ps(qa.add(W)), _mm256_loadu_ps(qb.add(W))));
            a2 = _mm256_add_ps(
                a2,
                _mm256_mul_ps(_mm256_loadu_ps(qa.add(2 * W)), _mm256_loadu_ps(qb.add(2 * W))),
            );
            a3 = _mm256_add_ps(
                a3,
                _mm256_mul_ps(_mm256_loadu_ps(qa.add(3 * W)), _mm256_loadu_ps(qb.add(3 * W))),
            );
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), a0);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(W), a1);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(2 * W), a2);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(3 * W), a3);
        for ((l, &x), &y) in lanes.iter_mut().zip(&a[blocks * LANES..]).zip(&b[blocks * LANES..]) {
            *l += x * y;
        }
        hsum(&lanes)
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn sse(a: &[f32], b: &[f32]) -> f32 {
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let blocks = a.len() / LANES;
        let (mut a0, mut a1, mut a2, mut a3) =
            (_mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps(), _mm256_setzero_ps());
        for t in 0..blocks {
            let (qa, qb) = (pa.add(t * LANES), pb.add(t * LANES));
            let d0 = _mm256_sub_ps(_mm256_loadu_ps(qa), _mm256_loadu_ps(qb));
            let d1 = _mm256_sub_ps(_mm256_loadu_ps(qa.add(W)), _mm256_loadu_ps(qb.add(W)));
            let d2 = _mm256_sub_ps(_mm256_loadu_ps(qa.add(2 * W)), _mm256_loadu_ps(qb.add(2 * W)));
            let d3 = _mm256_sub_ps(_mm256_loadu_ps(qa.add(3 * W)), _mm256_loadu_ps(qb.add(3 * W)));
            a0 = _mm256_add_ps(a0, _mm256_mul_ps(d0, d0));
            a1 = _mm256_add_ps(a1, _mm256_mul_ps(d1, d1));
            a2 = _mm256_add_ps(a2, _mm256_mul_ps(d2, d2));
            a3 = _mm256_add_ps(a3, _mm256_mul_ps(d3, d3));
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), a0);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(W), a1);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(2 * W), a2);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(3 * W), a3);
        for ((l, &x), &y) in lanes.iter_mut().zip(&a[blocks * LANES..]).zip(&b[blocks * LANES..]) {
            *l += (x - y) * (x - y);
        }
        hsum(&lanes)
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn binary(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
        let n = out.len();
        let (pa, pb, po) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        macro_rules! lp {
            ($vop:ident, $e:expr) => {{
                let mut i = 0;
                while i + W <= n {
                    let v = $vop(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
                    _mm256_storeu_ps(po.add(i), v);
                    i += W;
                }
                while i < n {
                    *po.add(i) = $e(*pa.add(i), *pb.add(i));
                    i += 1;
                }
            }};
        }
        match op {
            BinOp::Add => lp!(_mm256_add_ps, |x, y| x + y),
            BinOp::Sub => lp!(_mm256_sub_ps, |x, y| x - y),
            BinOp::Mul => lp!(_mm256_mul_ps, |x, y| x * y),
            BinOp::Div => lp!(_mm256_div_ps, |x, y| x / y),
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn axpy(dst: &mut [f32], s: f32, src: &[f32]) {
        let n = dst.len();
        let (pd, ps) = (dst.as_mut_ptr(), src.as_ptr());
        let sv = _mm256_set1_ps(s);
        let mut i = 0;
        while i + W <= n {
            let v = _mm256_add_ps(_mm256_loadu_ps(pd.add(i)), _mm256_mul_ps(sv, _mm256_loadu_ps(ps.add(i))));
            _mm256_storeu_ps(pd.add(i), v);
            i += W;
        }
        while i < n {
            *pd.add(i) += s * *ps.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn add_assign(dst: &mut [f32], src: &[f32]) {
        let n = dst.len();
        let (pd, ps) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i + W <= n {
            let v = _mm256_add_ps(_mm256_loadu_ps(pd.add(i)), _mm256_loadu_ps(ps.add(i)));
            _mm256_storeu_ps(pd.add(i), v);
            i += W;
        }
        while i < n {
            *pd.add(i) += *ps.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn scale(dst: &mut [f32], s: f32) {
        let n = dst.len();
        let pd = dst.as_mut_ptr();
        let sv = _mm256_set1_ps(s);
        let mut i = 0;
        while i + W <= n {
            _mm256_storeu_ps(pd.add(i), _mm256_mul_ps(_mm256_loadu_ps(pd.add(i)), sv));
            i += W;
        }
        while i < n {
            *pd.add(i) *= s;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn add_scalar_assign(dst: &mut [f32], s: f32) {
        let n = dst.len();
        let pd = dst.as_mut_ptr();
        let sv = _mm256_set1_ps(s);
        let mut i = 0;
        while i + W <= n {
            _mm256_storeu_ps(pd.add(i), _mm256_add_ps(_mm256_loadu_ps(pd.add(i)), sv));
            i += W;
        }
        while i < n {
            *pd.add(i) += s;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gemm_tile4(
        a: [&[f32]; 4],
        p0: usize,
        p1: usize,
        b: &[f32],
        n: usize,
        o: [&mut [f32]; 4],
    ) {
        let [a0, a1, a2, a3] = a;
        let [o0, o1, o2, o3] = o;
        let bp = b.as_ptr();
        let (q0, q1, q2, q3) = (o0.as_mut_ptr(), o1.as_mut_ptr(), o2.as_mut_ptr(), o3.as_mut_ptr());
        let mut j = 0usize;
        // 4×16 register tile: eight accumulators stay resident across the
        // whole p-block; out is read/written once per block, preserving the
        // fully sequential ascending-p association per element.
        while j + 2 * W <= n {
            let mut c00 = _mm256_loadu_ps(q0.add(j));
            let mut c01 = _mm256_loadu_ps(q0.add(j + W));
            let mut c10 = _mm256_loadu_ps(q1.add(j));
            let mut c11 = _mm256_loadu_ps(q1.add(j + W));
            let mut c20 = _mm256_loadu_ps(q2.add(j));
            let mut c21 = _mm256_loadu_ps(q2.add(j + W));
            let mut c30 = _mm256_loadu_ps(q3.add(j));
            let mut c31 = _mm256_loadu_ps(q3.add(j + W));
            for p in p0..p1 {
                let bq = bp.add(p * n + j);
                let b0 = _mm256_loadu_ps(bq);
                let b1 = _mm256_loadu_ps(bq.add(W));
                let v0 = _mm256_set1_ps(*a0.get_unchecked(p));
                c00 = _mm256_add_ps(c00, _mm256_mul_ps(v0, b0));
                c01 = _mm256_add_ps(c01, _mm256_mul_ps(v0, b1));
                let v1 = _mm256_set1_ps(*a1.get_unchecked(p));
                c10 = _mm256_add_ps(c10, _mm256_mul_ps(v1, b0));
                c11 = _mm256_add_ps(c11, _mm256_mul_ps(v1, b1));
                let v2 = _mm256_set1_ps(*a2.get_unchecked(p));
                c20 = _mm256_add_ps(c20, _mm256_mul_ps(v2, b0));
                c21 = _mm256_add_ps(c21, _mm256_mul_ps(v2, b1));
                let v3 = _mm256_set1_ps(*a3.get_unchecked(p));
                c30 = _mm256_add_ps(c30, _mm256_mul_ps(v3, b0));
                c31 = _mm256_add_ps(c31, _mm256_mul_ps(v3, b1));
            }
            _mm256_storeu_ps(q0.add(j), c00);
            _mm256_storeu_ps(q0.add(j + W), c01);
            _mm256_storeu_ps(q1.add(j), c10);
            _mm256_storeu_ps(q1.add(j + W), c11);
            _mm256_storeu_ps(q2.add(j), c20);
            _mm256_storeu_ps(q2.add(j + W), c21);
            _mm256_storeu_ps(q3.add(j), c30);
            _mm256_storeu_ps(q3.add(j + W), c31);
            j += 2 * W;
        }
        if j + W <= n {
            let mut c0 = _mm256_loadu_ps(q0.add(j));
            let mut c1 = _mm256_loadu_ps(q1.add(j));
            let mut c2 = _mm256_loadu_ps(q2.add(j));
            let mut c3 = _mm256_loadu_ps(q3.add(j));
            for p in p0..p1 {
                let b0 = _mm256_loadu_ps(bp.add(p * n + j));
                c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_set1_ps(*a0.get_unchecked(p)), b0));
                c1 = _mm256_add_ps(c1, _mm256_mul_ps(_mm256_set1_ps(*a1.get_unchecked(p)), b0));
                c2 = _mm256_add_ps(c2, _mm256_mul_ps(_mm256_set1_ps(*a2.get_unchecked(p)), b0));
                c3 = _mm256_add_ps(c3, _mm256_mul_ps(_mm256_set1_ps(*a3.get_unchecked(p)), b0));
            }
            _mm256_storeu_ps(q0.add(j), c0);
            _mm256_storeu_ps(q1.add(j), c1);
            _mm256_storeu_ps(q2.add(j), c2);
            _mm256_storeu_ps(q3.add(j), c3);
            j += W;
        }
        for jj in j..n {
            let (mut x0, mut x1, mut x2, mut x3) = (o0[jj], o1[jj], o2[jj], o3[jj]);
            for p in p0..p1 {
                let bv = *bp.add(p * n + jj);
                x0 += a0[p] * bv;
                x1 += a1[p] * bv;
                x2 += a2[p] * bv;
                x3 += a3[p] * bv;
            }
            o0[jj] = x0;
            o1[jj] = x1;
            o2[jj] = x2;
            o3[jj] = x3;
        }
    }

    // Tail loops index by position on purpose: they must visit elements in
    // exactly the order the scalar twin does.
    #[allow(clippy::needless_range_loop)]
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gemm_tile1(
        arow: &[f32],
        p0: usize,
        p1: usize,
        b: &[f32],
        n: usize,
        orow: &mut [f32],
    ) {
        let bp = b.as_ptr();
        let q = orow.as_mut_ptr();
        let mut j = 0usize;
        while j + 2 * W <= n {
            let mut c0 = _mm256_loadu_ps(q.add(j));
            let mut c1 = _mm256_loadu_ps(q.add(j + W));
            for p in p0..p1 {
                let bq = bp.add(p * n + j);
                let v = _mm256_set1_ps(*arow.get_unchecked(p));
                c0 = _mm256_add_ps(c0, _mm256_mul_ps(v, _mm256_loadu_ps(bq)));
                c1 = _mm256_add_ps(c1, _mm256_mul_ps(v, _mm256_loadu_ps(bq.add(W))));
            }
            _mm256_storeu_ps(q.add(j), c0);
            _mm256_storeu_ps(q.add(j + W), c1);
            j += 2 * W;
        }
        if j + W <= n {
            let mut c0 = _mm256_loadu_ps(q.add(j));
            for p in p0..p1 {
                let v = _mm256_set1_ps(*arow.get_unchecked(p));
                c0 = _mm256_add_ps(c0, _mm256_mul_ps(v, _mm256_loadu_ps(bp.add(p * n + j))));
            }
            _mm256_storeu_ps(q.add(j), c0);
            j += W;
        }
        for jj in j..n {
            let mut x = orow[jj];
            for p in p0..p1 {
                x += arow[p] * *bp.add(p * n + jj);
            }
            orow[jj] = x;
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gemm_tile4_at(
        a: &[f32],
        astride: usize,
        base: usize,
        p0: usize,
        p1: usize,
        b: &[f32],
        n: usize,
        o: [&mut [f32]; 4],
    ) {
        let [o0, o1, o2, o3] = o;
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let (q0, q1, q2, q3) = (o0.as_mut_ptr(), o1.as_mut_ptr(), o2.as_mut_ptr(), o3.as_mut_ptr());
        let mut j = 0usize;
        while j + 2 * W <= n {
            let mut c00 = _mm256_loadu_ps(q0.add(j));
            let mut c01 = _mm256_loadu_ps(q0.add(j + W));
            let mut c10 = _mm256_loadu_ps(q1.add(j));
            let mut c11 = _mm256_loadu_ps(q1.add(j + W));
            let mut c20 = _mm256_loadu_ps(q2.add(j));
            let mut c21 = _mm256_loadu_ps(q2.add(j + W));
            let mut c30 = _mm256_loadu_ps(q3.add(j));
            let mut c31 = _mm256_loadu_ps(q3.add(j + W));
            for p in p0..p1 {
                let ac = ap.add(p * astride + base);
                let bq = bp.add(p * n + j);
                let b0 = _mm256_loadu_ps(bq);
                let b1 = _mm256_loadu_ps(bq.add(W));
                let v0 = _mm256_set1_ps(*ac);
                c00 = _mm256_add_ps(c00, _mm256_mul_ps(v0, b0));
                c01 = _mm256_add_ps(c01, _mm256_mul_ps(v0, b1));
                let v1 = _mm256_set1_ps(*ac.add(1));
                c10 = _mm256_add_ps(c10, _mm256_mul_ps(v1, b0));
                c11 = _mm256_add_ps(c11, _mm256_mul_ps(v1, b1));
                let v2 = _mm256_set1_ps(*ac.add(2));
                c20 = _mm256_add_ps(c20, _mm256_mul_ps(v2, b0));
                c21 = _mm256_add_ps(c21, _mm256_mul_ps(v2, b1));
                let v3 = _mm256_set1_ps(*ac.add(3));
                c30 = _mm256_add_ps(c30, _mm256_mul_ps(v3, b0));
                c31 = _mm256_add_ps(c31, _mm256_mul_ps(v3, b1));
            }
            _mm256_storeu_ps(q0.add(j), c00);
            _mm256_storeu_ps(q0.add(j + W), c01);
            _mm256_storeu_ps(q1.add(j), c10);
            _mm256_storeu_ps(q1.add(j + W), c11);
            _mm256_storeu_ps(q2.add(j), c20);
            _mm256_storeu_ps(q2.add(j + W), c21);
            _mm256_storeu_ps(q3.add(j), c30);
            _mm256_storeu_ps(q3.add(j + W), c31);
            j += 2 * W;
        }
        if j + W <= n {
            let mut c0 = _mm256_loadu_ps(q0.add(j));
            let mut c1 = _mm256_loadu_ps(q1.add(j));
            let mut c2 = _mm256_loadu_ps(q2.add(j));
            let mut c3 = _mm256_loadu_ps(q3.add(j));
            for p in p0..p1 {
                let ac = ap.add(p * astride + base);
                let b0 = _mm256_loadu_ps(bp.add(p * n + j));
                c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_set1_ps(*ac), b0));
                c1 = _mm256_add_ps(c1, _mm256_mul_ps(_mm256_set1_ps(*ac.add(1)), b0));
                c2 = _mm256_add_ps(c2, _mm256_mul_ps(_mm256_set1_ps(*ac.add(2)), b0));
                c3 = _mm256_add_ps(c3, _mm256_mul_ps(_mm256_set1_ps(*ac.add(3)), b0));
            }
            _mm256_storeu_ps(q0.add(j), c0);
            _mm256_storeu_ps(q1.add(j), c1);
            _mm256_storeu_ps(q2.add(j), c2);
            _mm256_storeu_ps(q3.add(j), c3);
            j += W;
        }
        for jj in j..n {
            let (mut x0, mut x1, mut x2, mut x3) = (o0[jj], o1[jj], o2[jj], o3[jj]);
            for p in p0..p1 {
                let ac = ap.add(p * astride + base);
                let bv = *bp.add(p * n + jj);
                x0 += *ac * bv;
                x1 += *ac.add(1) * bv;
                x2 += *ac.add(2) * bv;
                x3 += *ac.add(3) * bv;
            }
            o0[jj] = x0;
            o1[jj] = x1;
            o2[jj] = x2;
            o3[jj] = x3;
        }
    }

    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gemm_tile1_at(
        a: &[f32],
        astride: usize,
        base: usize,
        p0: usize,
        p1: usize,
        b: &[f32],
        n: usize,
        orow: &mut [f32],
    ) {
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let q = orow.as_mut_ptr();
        let mut j = 0usize;
        while j + 2 * W <= n {
            let mut c0 = _mm256_loadu_ps(q.add(j));
            let mut c1 = _mm256_loadu_ps(q.add(j + W));
            for p in p0..p1 {
                let v = _mm256_set1_ps(*ap.add(p * astride + base));
                let bq = bp.add(p * n + j);
                c0 = _mm256_add_ps(c0, _mm256_mul_ps(v, _mm256_loadu_ps(bq)));
                c1 = _mm256_add_ps(c1, _mm256_mul_ps(v, _mm256_loadu_ps(bq.add(W))));
            }
            _mm256_storeu_ps(q.add(j), c0);
            _mm256_storeu_ps(q.add(j + W), c1);
            j += 2 * W;
        }
        if j + W <= n {
            let mut c0 = _mm256_loadu_ps(q.add(j));
            for p in p0..p1 {
                let v = _mm256_set1_ps(*ap.add(p * astride + base));
                c0 = _mm256_add_ps(c0, _mm256_mul_ps(v, _mm256_loadu_ps(bp.add(p * n + j))));
            }
            _mm256_storeu_ps(q.add(j), c0);
            j += W;
        }
        for jj in j..n {
            let mut x = orow[jj];
            for p in p0..p1 {
                x += *ap.add(p * astride + base) * *bp.add(p * n + jj);
            }
            orow[jj] = x;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn bias_act_forward(out: &mut [f32], h: &[f32], b: &[f32], act: Activation) {
        let cols = b.len();
        let rows = h.len() / cols;
        let zero = _mm256_setzero_ps();
        let (po, ph, pb) = (out.as_mut_ptr(), h.as_ptr(), b.as_ptr());
        for r in 0..rows {
            let base = r * cols;
            let mut j = 0usize;
            while j + W <= cols {
                let x = _mm256_add_ps(_mm256_loadu_ps(ph.add(base + j)), _mm256_loadu_ps(pb.add(j)));
                let y = match act {
                    Activation::Identity => x,
                    // maxps(x, 0) matches f32::max(x, 0.0): NaN and -0.0 both
                    // resolve to +0.0 through the second operand.
                    Activation::Relu => _mm256_max_ps(x, zero),
                    Activation::LeakyRelu(s) => {
                        let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(x, zero);
                        _mm256_blendv_ps(_mm256_mul_ps(_mm256_set1_ps(s), x), x, mask)
                    }
                };
                _mm256_storeu_ps(po.add(base + j), y);
                j += W;
            }
            while j < cols {
                let x = *ph.add(base + j) + *pb.add(j);
                *po.add(base + j) = match act {
                    Activation::Identity => x,
                    Activation::Relu => x.max(0.0),
                    Activation::LeakyRelu(s) => {
                        if x > 0.0 {
                            x
                        } else {
                            s * x
                        }
                    }
                };
                j += 1;
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn bias_act_backward(
        gh: &mut [f32],
        gb: &mut [f32],
        g: &[f32],
        y: &[f32],
        act: Activation,
    ) {
        let cols = gb.len();
        let rows = g.len() / cols;
        let zero = _mm256_setzero_ps();
        let one = _mm256_set1_ps(1.0);
        let (pgh, pgb, pg, py) = (gh.as_mut_ptr(), gb.as_mut_ptr(), g.as_ptr(), y.as_ptr());
        for r in 0..rows {
            let base = r * cols;
            let mut j = 0usize;
            while j + W <= cols {
                let gv = _mm256_loadu_ps(pg.add(base + j));
                // The factor is multiplied (not selected) so g·0.0 keeps the
                // scalar path's signed zeroes.
                let v = match act {
                    Activation::Identity => gv,
                    Activation::Relu => {
                        let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(_mm256_loadu_ps(py.add(base + j)), zero);
                        _mm256_mul_ps(gv, _mm256_blendv_ps(zero, one, mask))
                    }
                    Activation::LeakyRelu(s) => {
                        let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(_mm256_loadu_ps(py.add(base + j)), zero);
                        _mm256_mul_ps(gv, _mm256_blendv_ps(_mm256_set1_ps(s), one, mask))
                    }
                };
                _mm256_storeu_ps(pgh.add(base + j), v);
                _mm256_storeu_ps(pgb.add(j), _mm256_add_ps(_mm256_loadu_ps(pgb.add(j)), v));
                j += W;
            }
            while j < cols {
                let gv = *pg.add(base + j);
                let yv = *py.add(base + j);
                let v = match act {
                    Activation::Identity => gv,
                    Activation::Relu => gv * if yv > 0.0 { 1.0 } else { 0.0 },
                    Activation::LeakyRelu(s) => gv * if yv > 0.0 { 1.0 } else { s },
                };
                *pgh.add(base + j) = v;
                *pgb.add(j) += v;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::SeededRng;

    fn rand_vec(rng: &mut SeededRng, n: usize) -> Vec<f32> {
        (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    /// Run `f` at forced-scalar and at the detected level, asserting the
    /// bits agree. On machines without AVX2 both runs are scalar and the
    /// test degenerates to a self-comparison (still a valid smoke test).
    fn assert_paths_agree<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
        let scalar = with_level(Level::Scalar, &f);
        let native = with_level(Level::Avx2Fma, &f);
        assert_eq!(scalar, native);
    }

    #[test]
    fn level_name_is_stable() {
        assert!(matches!(level_name(), "scalar" | "avx2+fma"));
        assert_eq!(Level::Scalar.name(), "scalar");
        assert_eq!(Level::Avx2Fma.name(), "avx2+fma");
    }

    #[test]
    fn with_level_restores_on_exit() {
        let before = active_level();
        with_level(Level::Scalar, || {
            assert_eq!(active_level(), Level::Scalar);
        });
        assert_eq!(active_level(), before);
    }

    #[test]
    fn reductions_bitwise_across_levels() {
        let mut rng = SeededRng::new(41);
        // Odd lengths on purpose: full 32-lane blocks plus every tail size.
        for n in [0usize, 1, 5, 31, 32, 33, 64, 100, 1023] {
            let a = rand_vec(&mut rng, n);
            let b = rand_vec(&mut rng, n);
            assert_paths_agree(|| sum(&a).to_bits());
            assert_paths_agree(|| sum_squares(&a).to_bits());
            assert_paths_agree(|| sum_sq_dev(&a, 0.37).to_bits());
            assert_paths_agree(|| dot(&a, &b).to_bits());
            assert_paths_agree(|| sse(&a, &b).to_bits());
        }
    }

    #[test]
    fn reductions_handle_nan_and_inf() {
        let mut a = vec![1.0f32; 40];
        a[7] = f32::INFINITY;
        a[33] = f32::NEG_INFINITY;
        assert!(sum(&a).is_nan()); // inf + (-inf) meets in the fold
        let mut b = vec![0.5f32; 40];
        b[3] = f32::NAN;
        assert!(sum(&b).is_nan());
        assert!(dot(&a, &b).is_nan());
        assert_paths_agree(|| sum(&a).is_nan());
        assert_paths_agree(|| sse(&a, &b).is_nan());
    }

    #[test]
    fn elementwise_bitwise_across_levels() {
        let mut rng = SeededRng::new(43);
        for n in [0usize, 3, 8, 17, 256, 1000] {
            let a = rand_vec(&mut rng, n);
            let b: Vec<f32> = rand_vec(&mut rng, n).iter().map(|x| x + 1.5).collect();
            for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div] {
                assert_paths_agree(|| {
                    let mut out = vec![0.0f32; n];
                    binary(op, &a, &b, &mut out);
                    out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                });
            }
            assert_paths_agree(|| {
                let mut d = a.clone();
                axpy(&mut d, -0.73, &b);
                d.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            });
            assert_paths_agree(|| {
                let mut d = a.clone();
                add_assign(&mut d, &b);
                scale(&mut d, 1.1);
                add_scalar_assign(&mut d, -0.2);
                d.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            });
        }
    }

    #[test]
    fn gemm_tiles_bitwise_across_levels() {
        let mut rng = SeededRng::new(47);
        // (rows=4 tile) × n columns over k, with ragged n to hit the 16-,
        // 8- and scalar-tail paths.
        for (k, n) in [(1usize, 1usize), (5, 7), (16, 16), (33, 23), (64, 40), (31, 100)] {
            let a: Vec<f32> = rand_vec(&mut rng, 4 * k);
            let b: Vec<f32> = rand_vec(&mut rng, k * n);
            assert_paths_agree(|| {
                let mut out = vec![0.0f32; 4 * n];
                let (o0, rest) = out.split_at_mut(n);
                let (o1, rest) = rest.split_at_mut(n);
                let (o2, o3) = rest.split_at_mut(n);
                gemm_tile4(
                    [&a[..k], &a[k..2 * k], &a[2 * k..3 * k], &a[3 * k..]],
                    0,
                    k,
                    &b,
                    n,
                    [o0, o1, o2, o3],
                );
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            });
            assert_paths_agree(|| {
                let mut out = vec![0.0f32; n];
                gemm_tile1(&a[..k], 0, k, &b, n, &mut out);
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            });
            // Strided (Aᵀ) variants: A is [k, 6], tile starts at column 1.
            let at: Vec<f32> = rand_vec(&mut rng, k * 6);
            assert_paths_agree(|| {
                let mut out = vec![0.0f32; 4 * n];
                let (o0, rest) = out.split_at_mut(n);
                let (o1, rest) = rest.split_at_mut(n);
                let (o2, o3) = rest.split_at_mut(n);
                gemm_tile4_at(&at, 6, 1, 0, k, &b, n, [o0, o1, o2, o3]);
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            });
            assert_paths_agree(|| {
                let mut out = vec![0.0f32; n];
                gemm_tile1_at(&at, 6, 1, 0, k, &b, n, &mut out);
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            });
        }
    }

    #[test]
    fn bias_act_bitwise_across_levels() {
        let mut rng = SeededRng::new(53);
        for (rows, cols) in [(1usize, 1usize), (3, 7), (5, 8), (4, 19), (2, 33)] {
            let h = rand_vec(&mut rng, rows * cols);
            let b = rand_vec(&mut rng, cols);
            let g = rand_vec(&mut rng, rows * cols);
            for act in [Activation::Identity, Activation::Relu, Activation::LeakyRelu(0.01)] {
                let (y_s, y_n) = (
                    with_level(Level::Scalar, || {
                        let mut y = vec![0.0f32; rows * cols];
                        bias_act_forward(&mut y, &h, &b, act);
                        y
                    }),
                    with_level(Level::Avx2Fma, || {
                        let mut y = vec![0.0f32; rows * cols];
                        bias_act_forward(&mut y, &h, &b, act);
                        y
                    }),
                );
                let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&y_s), bits(&y_n), "{act:?} forward");
                assert_paths_agree(|| {
                    let mut ghv = vec![0.0f32; rows * cols];
                    let mut gbv = vec![0.0f32; cols];
                    bias_act_backward(&mut ghv, &mut gbv, &g, &y_s, act);
                    (bits(&ghv), bits(&gbv))
                });
            }
        }
    }

    #[test]
    fn bias_act_handles_negative_zero_and_nan() {
        // relu'(y)·g multiplies by 0.0 on the inactive branch, so negative
        // upstream gradients must produce -0.0 on both paths.
        let h = vec![-1.0f32, 2.0, f32::NAN, -0.0, 0.0, 3.0, -5.0, 1.0, 0.25];
        let b = vec![0.0f32; 9];
        let g = vec![-2.0f32; 9];
        for act in [Activation::Relu, Activation::LeakyRelu(0.5)] {
            let run = |lvl| {
                with_level(lvl, || {
                    let mut y = vec![0.0f32; 9];
                    bias_act_forward(&mut y, &h, &b, act);
                    let mut ghv = vec![0.0f32; 9];
                    let mut gbv = vec![0.0f32; 9];
                    bias_act_backward(&mut ghv, &mut gbv, &g, &y, act);
                    (y, ghv, gbv)
                })
            };
            let (ys, gs, bs_) = run(Level::Scalar);
            let (yn, gn, bn) = run(Level::Avx2Fma);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&ys), bits(&yn), "{act:?} forward");
            assert_eq!(bits(&gs), bits(&gn), "{act:?} grad");
            assert_eq!(bits(&bs_), bits(&bn), "{act:?} bias grad");
        }
    }
}
