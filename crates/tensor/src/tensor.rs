//! The dense tensor type and its structural operations.

use crate::arena;
use crate::shape::{Shape, ShapeError};

/// A dense, contiguous, row-major `f32` tensor.
///
/// Storage is recycled through the [`arena`] buffer pool: dropping a tensor
/// shelves its backing `Vec<f32>` for reuse, and the constructors here (and
/// the kernels throughout the crate) draw from that shelf, so steady-state
/// workloads with a repeating shape mix run (nearly) allocation-free.
#[derive(Debug, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor { shape: self.shape.clone(), data: arena::take_copy(&self.data) }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        // `into_vec`/`try_reshape` take the data out first, leaving nothing
        // to recycle here.
        if self.data.capacity() != 0 {
            arena::recycle(std::mem::take(&mut self.data));
        }
    }
}

impl Tensor {
    // ---------------------------------------------------------------- construction

    /// Build a tensor from a flat row-major buffer.
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {} ({} elems)",
            data.len(),
            shape,
            shape.len()
        );
        Tensor { shape, data }
    }

    /// A tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = arena::take_zeroed(shape.len());
        Tensor { shape, data }
    }

    /// A tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = arena::take_full(shape.len(), value);
        Tensor { shape, data }
    }

    /// A rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: Shape::new(&[]), data: vec![value] }
    }

    /// Evenly spaced values in `[start, end)` with step 1, as a rank-1 tensor.
    pub fn arange(start: f32, end: f32) -> Self {
        let n = ((end - start).max(0.0)).ceil() as usize;
        let data: Vec<f32> = (0..n).map(|i| start + i as f32).collect();
        Tensor { shape: Shape::new(&[n]), data }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    // ---------------------------------------------------------------- accessors

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat buffer (taken out before `Drop`, so the
    /// caller now owns the allocation instead of the arena).
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Element at a multi-dimensional index.
    #[inline]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    #[inline]
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// The single value of a rank-0 or one-element tensor.
    ///
    /// Panics if the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() on tensor with {} elements (shape {})", self.len(), self.shape);
        self.data[0]
    }

    // ---------------------------------------------------------------- structure

    /// Reshape to `dims` (element count must match). Zero-copy move.
    pub fn reshape(self, dims: &[usize]) -> Self {
        self.try_reshape(dims).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible reshape.
    pub fn try_reshape(mut self, dims: &[usize]) -> Result<Self, ShapeError> {
        let new_shape = Shape::new(dims);
        if new_shape.len() != self.shape.len() {
            return Err(ShapeError::ElementCountMismatch {
                from: self.shape.dims().to_vec(),
                to: dims.to_vec(),
            });
        }
        let data = std::mem::take(&mut self.data);
        Ok(Tensor { shape: new_shape, data })
    }

    /// Reshape without consuming (clones the buffer handle).
    pub fn reshaped(&self, dims: &[usize]) -> Self {
        self.clone().reshape(dims)
    }

    /// Insert a size-1 axis at `axis`.
    pub fn unsqueeze(&self, axis: usize) -> Self {
        let mut dims = self.dims().to_vec();
        assert!(axis <= dims.len(), "unsqueeze axis {axis} out of range");
        dims.insert(axis, 1);
        self.reshaped(&dims)
    }

    /// Remove a size-1 axis at `axis`. Panics if the extent is not 1.
    pub fn squeeze(&self, axis: usize) -> Self {
        let mut dims = self.dims().to_vec();
        assert!(axis < dims.len() && dims[axis] == 1, "squeeze axis {axis} of {:?} must be 1", dims);
        dims.remove(axis);
        self.reshaped(&dims)
    }

    /// Transpose a rank-2 tensor.
    pub fn transpose2(&self) -> Self {
        assert_eq!(self.rank(), 2, "transpose2 requires rank-2, got {}", self.shape);
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = arena::take_uninit(r * c); // every element written below
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor::from_vec(out, &[c, r])
    }

    /// Permute axes: output axis `i` takes input axis `perm[i]`. Materializes.
    pub fn permute(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.rank(), "permute rank mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let in_dims = self.dims();
        let out_dims: Vec<usize> = perm.iter().map(|&p| in_dims[p]).collect();
        let in_strides = self.shape.strides();
        let out_shape = Shape::new(&out_dims);
        let mut out = arena::take_uninit(self.len()); // every element written below
        let mut idx = vec![0usize; out_dims.len()];
        for (flat, slot) in out.iter_mut().enumerate() {
            // Decompose flat into out index, map to input offset.
            let mut rem = flat;
            for a in (0..out_dims.len()).rev() {
                idx[a] = rem % out_dims[a];
                rem /= out_dims[a];
            }
            let mut src = 0usize;
            for (a, &p) in perm.iter().enumerate() {
                src += idx[a] * in_strides[p];
            }
            *slot = self.data[src];
        }
        Tensor { shape: out_shape, data: out }
    }

    /// Extract the sub-tensor at `index` along axis 0 (reduces rank by one).
    pub fn index_axis0(&self, index: usize) -> Self {
        assert!(self.rank() >= 1, "index_axis0 on scalar");
        let n = self.dims()[0];
        assert!(index < n, "index {index} out of bounds for axis 0 extent {n}");
        let chunk = self.len() / n;
        let data = arena::take_copy(&self.data[index * chunk..(index + 1) * chunk]);
        Tensor::from_vec(data, &self.dims()[1..])
    }

    /// Slice `[start, end)` along axis 0, keeping rank.
    pub fn slice_axis0(&self, start: usize, end: usize) -> Self {
        assert!(self.rank() >= 1, "slice_axis0 on scalar");
        let n = self.dims()[0];
        assert!(start <= end && end <= n, "slice [{start}, {end}) out of bounds for extent {n}");
        let chunk = self.len() / n.max(1);
        let data = arena::take_copy(&self.data[start * chunk..end * chunk]);
        let mut dims = self.dims().to_vec();
        dims[0] = end - start;
        Tensor::from_vec(data, &dims)
    }

    /// Concatenate tensors along `axis`. All other extents must match.
    pub fn concat(parts: &[&Tensor], axis: usize) -> Self {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let rank = parts[0].rank();
        assert!(axis < rank, "concat axis {axis} out of range for rank {rank}");
        for p in parts {
            assert_eq!(p.rank(), rank, "concat rank mismatch");
            for a in 0..rank {
                if a != axis {
                    assert_eq!(
                        p.dims()[a],
                        parts[0].dims()[a],
                        "concat extent mismatch on axis {a}: {:?} vs {:?}",
                        p.dims(),
                        parts[0].dims()
                    );
                }
            }
        }
        let mut out_dims = parts[0].dims().to_vec();
        out_dims[axis] = parts.iter().map(|p| p.dims()[axis]).sum();

        // outer = product of dims before `axis`; inner = product after.
        let outer: usize = out_dims[..axis].iter().product();
        let inner: usize = out_dims[axis + 1..].iter().product();
        let mut data = arena::take_uninit(out_dims.iter().product());
        let mut at = 0usize;
        for o in 0..outer {
            for p in parts {
                let pa = p.dims()[axis];
                let chunk = pa * inner;
                data[at..at + chunk].copy_from_slice(&p.data[o * chunk..(o + 1) * chunk]);
                at += chunk;
            }
        }
        debug_assert_eq!(at, data.len());
        Tensor::from_vec(data, &out_dims)
    }

    /// Stack rank-equal tensors along a new leading axis.
    pub fn stack(parts: &[&Tensor]) -> Self {
        assert!(!parts.is_empty(), "stack of zero tensors");
        for p in parts {
            assert_eq!(p.dims(), parts[0].dims(), "stack shape mismatch");
        }
        let mut dims = vec![parts.len()];
        dims.extend_from_slice(parts[0].dims());
        let each = parts[0].len();
        let mut data = arena::take_uninit(parts.len() * each);
        for (slot, p) in data.chunks_mut(each.max(1)).zip(parts) {
            slot.copy_from_slice(&p.data);
        }
        Tensor::from_vec(data, &dims)
    }

    /// Split along `axis` into `sizes`-extent chunks (sizes must sum to extent).
    pub fn split(&self, axis: usize, sizes: &[usize]) -> Vec<Tensor> {
        assert!(axis < self.rank(), "split axis out of range");
        let total: usize = sizes.iter().sum();
        assert_eq!(
            total,
            self.dims()[axis],
            "split sizes {sizes:?} do not sum to extent {}",
            self.dims()[axis]
        );
        let outer: usize = self.dims()[..axis].iter().product();
        let inner: usize = self.dims()[axis + 1..].iter().product();
        let full = self.dims()[axis] * inner;
        let mut outs: Vec<Tensor> = sizes
            .iter()
            .map(|&s| {
                let mut dims = self.dims().to_vec();
                dims[axis] = s;
                Tensor { shape: Shape::new(&dims), data: arena::take_uninit(outer * s * inner) }
            })
            .collect();
        for o in 0..outer {
            let mut off = 0usize;
            for (k, &s) in sizes.iter().enumerate() {
                let from = o * full + off * inner;
                let chunk = s * inner;
                outs[k].data[o * chunk..(o + 1) * chunk].copy_from_slice(&self.data[from..from + chunk]);
                off += s;
            }
        }
        outs
    }

    /// Repeat the tensor `n` times along a new leading axis.
    pub fn repeat_leading(&self, n: usize) -> Self {
        let mut dims = vec![n];
        dims.extend_from_slice(self.dims());
        let each = self.len();
        let mut data = arena::take_uninit(n * each);
        for slot in data.chunks_mut(each.max(1)) {
            slot.copy_from_slice(&self.data);
        }
        Tensor::from_vec(data, &dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(Tensor::eye(3).at(&[2, 2]), 1.0);
        assert_eq!(Tensor::eye(3).at(&[2, 1]), 0.0);
        assert_eq!(Tensor::arange(0.0, 4.0).as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_mismatch_panics() {
        Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn reshape_preserves_order() {
        let t = Tensor::arange(0.0, 6.0).reshape(&[2, 3]);
        assert_eq!(t.at(&[1, 0]), 3.0);
        let back = t.reshape(&[6]);
        assert_eq!(back.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn try_reshape_rejects_bad_count() {
        let t = Tensor::zeros(&[2, 3]);
        assert!(t.try_reshape(&[5]).is_err());
    }

    #[test]
    fn transpose2_correct() {
        let t = Tensor::arange(0.0, 6.0).reshape(&[2, 3]);
        let tt = t.transpose2();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.at(&[0, 1]), 3.0);
        assert_eq!(tt.at(&[2, 0]), 2.0);
    }

    #[test]
    fn permute_matches_transpose() {
        let t = Tensor::arange(0.0, 24.0).reshape(&[2, 3, 4]);
        let p = t.permute(&[2, 0, 1]);
        assert_eq!(p.dims(), &[4, 2, 3]);
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert_eq!(p.at(&[k, i, j]), t.at(&[i, j, k]));
                }
            }
        }
    }

    #[test]
    fn index_and_slice_axis0() {
        let t = Tensor::arange(0.0, 12.0).reshape(&[3, 4]);
        let row = t.index_axis0(1);
        assert_eq!(row.dims(), &[4]);
        assert_eq!(row.as_slice(), &[4.0, 5.0, 6.0, 7.0]);
        let s = t.slice_axis0(1, 3);
        assert_eq!(s.dims(), &[2, 4]);
        assert_eq!(s.at(&[0, 0]), 4.0);
    }

    #[test]
    fn concat_axis0_and_axis1() {
        let a = Tensor::arange(0.0, 4.0).reshape(&[2, 2]);
        let b = Tensor::arange(4.0, 8.0).reshape(&[2, 2]);
        let c0 = Tensor::concat(&[&a, &b], 0);
        assert_eq!(c0.dims(), &[4, 2]);
        assert_eq!(c0.at(&[2, 0]), 4.0);
        let c1 = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c1.dims(), &[2, 4]);
        assert_eq!(c1.at(&[0, 2]), 4.0);
        assert_eq!(c1.at(&[1, 3]), 7.0);
    }

    #[test]
    fn split_inverts_concat() {
        let a = Tensor::arange(0.0, 6.0).reshape(&[2, 3]);
        let b = Tensor::arange(6.0, 10.0).reshape(&[2, 2]);
        let c = Tensor::concat(&[&a, &b], 1);
        let parts = c.split(1, &[3, 2]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn stack_and_repeat() {
        let a = Tensor::ones(&[2]);
        let b = Tensor::zeros(&[2]);
        let s = Tensor::stack(&[&a, &b]);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.as_slice(), &[1.0, 1.0, 0.0, 0.0]);
        let r = a.repeat_leading(3);
        assert_eq!(r.dims(), &[3, 2]);
    }

    #[test]
    fn squeeze_unsqueeze_roundtrip() {
        let t = Tensor::zeros(&[2, 3]);
        let u = t.unsqueeze(1);
        assert_eq!(u.dims(), &[2, 1, 3]);
        assert_eq!(u.squeeze(1).dims(), &[2, 3]);
    }

    #[test]
    fn item_scalar() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }
}
