//! Elementwise and broadcasting arithmetic.

use crate::arena;
use crate::shape::{broadcast_shapes, broadcast_strides, Shape};
use crate::simd;
use crate::tensor::Tensor;
use muse_obs as obs;

/// Element count above which same-shape elementwise kernels fan out across
/// the pool. Elementwise results are per-element pure functions, so the
/// partition cannot change any bit of the output.
pub(crate) const PAR_MIN_ELEMS: usize = 1 << 15;

/// Minimum elements per parallel chunk so tiny jobs never reach the queue.
const PAR_MIN_CHUNK: usize = 1 << 13;

impl Tensor {
    /// Apply a binary op with numpy-style broadcasting.
    ///
    /// Fast path: identical shapes walk both buffers linearly (in parallel
    /// above [`PAR_MIN_ELEMS`]). General path: stride-0 reads over the
    /// broadcast shape.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        if self.dims() == other.dims() {
            let _t =
                obs::kernel_timer("tensor.zip_same", (3 * self.len() * std::mem::size_of::<f32>()) as u64);
            let (a, b) = (self.as_slice(), other.as_slice());
            let mut data = arena::take_uninit(self.len()); // every element written below
            if data.len() >= PAR_MIN_ELEMS {
                muse_parallel::parallel_for_mut(&mut data, PAR_MIN_CHUNK, |off, chunk| {
                    let (ac, bc) = (&a[off..off + chunk.len()], &b[off..off + chunk.len()]);
                    for ((d, &x), &y) in chunk.iter_mut().zip(ac).zip(bc) {
                        *d = f(x, y);
                    }
                });
            } else {
                for ((d, &x), &y) in data.iter_mut().zip(a).zip(b) {
                    *d = f(x, y);
                }
            }
            return Tensor::from_vec(data, self.dims());
        }
        let out_dims = broadcast_shapes(self.dims(), other.dims()).unwrap_or_else(|e| panic!("{e}"));
        let _t = obs::kernel_timer(
            "tensor.zip_broadcast",
            ((self.len() + other.len() + out_dims.iter().product::<usize>()) * std::mem::size_of::<f32>())
                as u64,
        );
        let ls = broadcast_strides(self.dims(), &out_dims);
        let rs = broadcast_strides(other.dims(), &out_dims);
        let out_shape = Shape::new(&out_dims);
        let n = out_shape.len();
        let mut data = arena::take_uninit(n); // every element written below
        let rank = out_dims.len();
        let mut idx = vec![0usize; rank];
        let (a, b) = (self.as_slice(), other.as_slice());
        let mut loff = 0usize;
        let mut roff = 0usize;
        for slot in data.iter_mut() {
            *slot = f(a[loff], b[roff]);
            // Increment the multi-index, updating offsets incrementally.
            for axis in (0..rank).rev() {
                idx[axis] += 1;
                loff += ls[axis];
                roff += rs[axis];
                if idx[axis] < out_dims[axis] {
                    break;
                }
                idx[axis] = 0;
                loff -= ls[axis] * out_dims[axis];
                roff -= rs[axis] * out_dims[axis];
            }
        }
        Tensor::from_vec(data, &out_dims)
    }

    /// Same-shape arithmetic through the vectorized [`simd::binary`]
    /// kernel; broadcasting shapes fall back to the generic stride walk.
    /// The per-element expression is identical on both routes, so the
    /// split is invisible in the output bits.
    fn zip_binop(&self, other: &Tensor, op: simd::BinOp) -> Tensor {
        if self.dims() != other.dims() {
            return self.zip_with(other, |a, b| op.apply(a, b));
        }
        let _t = obs::kernel_timer("tensor.zip_same", (3 * self.len() * std::mem::size_of::<f32>()) as u64);
        let (a, b) = (self.as_slice(), other.as_slice());
        let mut data = arena::take_uninit(self.len()); // every element written below
        if data.len() >= PAR_MIN_ELEMS {
            muse_parallel::parallel_for_mut(&mut data, PAR_MIN_CHUNK, |off, chunk| {
                let n = chunk.len();
                simd::binary(op, &a[off..off + n], &b[off..off + n], chunk);
            });
        } else {
            simd::binary(op, a, b, &mut data);
        }
        Tensor::from_vec(data, self.dims())
    }

    /// Elementwise (broadcasting) addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_binop(other, simd::BinOp::Add)
    }

    /// Elementwise (broadcasting) subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_binop(other, simd::BinOp::Sub)
    }

    /// Elementwise (broadcasting) multiplication.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_binop(other, simd::BinOp::Mul)
    }

    /// Elementwise (broadcasting) division.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_binop(other, simd::BinOp::Div)
    }

    /// Elementwise maximum of two tensors.
    pub fn maximum(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, f32::max)
    }

    /// Elementwise minimum of two tensors.
    pub fn minimum(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, f32::min)
    }

    /// Map every element through `f` (in parallel above [`PAR_MIN_ELEMS`]).
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let src = self.as_slice();
        let mut data = arena::take_uninit(self.len()); // every element written below
        if data.len() >= PAR_MIN_ELEMS {
            muse_parallel::parallel_for_mut(&mut data, PAR_MIN_CHUNK, |off, chunk| {
                let sc = &src[off..off + chunk.len()];
                for (d, &x) in chunk.iter_mut().zip(sc) {
                    *d = f(x);
                }
            });
        } else {
            for (d, &x) in data.iter_mut().zip(src) {
                *d = f(x);
            }
        }
        Tensor::from_vec(data, self.dims())
    }

    /// In-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        let data = self.as_mut_slice();
        if data.len() >= PAR_MIN_ELEMS {
            muse_parallel::parallel_for_mut(data, PAR_MIN_CHUNK, |_, chunk| {
                for x in chunk {
                    *x = f(*x);
                }
            });
        } else {
            for x in data {
                *x = f(*x);
            }
        }
    }

    /// Add a scalar.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Multiply by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Negate.
    pub fn neg(&self) -> Tensor {
        self.map(|x| -x)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        self.map(|x| x * x)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        self.map(|x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Clamp every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Accumulate `other` into `self` elementwise (shapes must match exactly).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.dims(),
            other.dims(),
            "add_assign shape mismatch: {:?} vs {:?}",
            self.dims(),
            other.dims()
        );
        let src = other.as_slice();
        let dst = self.as_mut_slice();
        if dst.len() >= PAR_MIN_ELEMS {
            muse_parallel::parallel_for_mut(dst, PAR_MIN_CHUNK, |off, chunk| {
                simd::add_assign(chunk, &src[off..off + chunk.len()]);
            });
        } else {
            simd::add_assign(dst, src);
        }
    }

    /// Scale in place.
    pub fn scale_assign(&mut self, s: f32) {
        let dst = self.as_mut_slice();
        if dst.len() >= PAR_MIN_ELEMS {
            muse_parallel::parallel_for_mut(dst, PAR_MIN_CHUNK, |_, chunk| simd::scale(chunk, s));
        } else {
            simd::scale(dst, s);
        }
    }

    /// Fused scaled accumulate: `self[i] += s * other[i]` in one pass
    /// (shapes must match exactly). The per-element expression matches
    /// `add_assign(&other.mul_scalar(s))` bit-for-bit without the temporary.
    pub fn axpy_assign(&mut self, s: f32, other: &Tensor) {
        assert_eq!(
            self.dims(),
            other.dims(),
            "axpy_assign shape mismatch: {:?} vs {:?}",
            self.dims(),
            other.dims()
        );
        let src = other.as_slice();
        let dst = self.as_mut_slice();
        if dst.len() >= PAR_MIN_ELEMS {
            muse_parallel::parallel_for_mut(dst, PAR_MIN_CHUNK, |off, chunk| {
                simd::axpy(chunk, s, &src[off..off + chunk.len()]);
            });
        } else {
            simd::axpy(dst, s, src);
        }
    }

    /// Fused binary accumulate: `self[i] += f(a[i], b[i])` in one pass (all
    /// three shapes must match exactly). Matches
    /// `add_assign(&a.zip_with(b, f))` bit-for-bit without the temporary.
    pub fn accum_zip(&mut self, a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) {
        assert_eq!(self.dims(), a.dims(), "accum_zip shape mismatch: {:?} vs {:?}", self.dims(), a.dims());
        assert_eq!(a.dims(), b.dims(), "accum_zip shape mismatch: {:?} vs {:?}", a.dims(), b.dims());
        let (sa, sb) = (a.as_slice(), b.as_slice());
        let dst = self.as_mut_slice();
        if dst.len() >= PAR_MIN_ELEMS {
            muse_parallel::parallel_for_mut(dst, PAR_MIN_CHUNK, |off, chunk| {
                let (ac, bc) = (&sa[off..off + chunk.len()], &sb[off..off + chunk.len()]);
                for ((d, &x), &y) in chunk.iter_mut().zip(ac).zip(bc) {
                    *d += f(x, y);
                }
            });
        } else {
            for ((d, &x), &y) in dst.iter_mut().zip(sa).zip(sb) {
                *d += f(x, y);
            }
        }
    }

    /// True iff all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.as_slice().iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference to another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.dims(), other.dims(), "max_abs_diff shape mismatch");
        self.as_slice().iter().zip(other.as_slice()).map(|(&a, &b)| (a - b).abs()).fold(0.0, f32::max)
    }

    /// Approximate equality within `tol` (same shape required).
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.dims() == other.dims() && self.max_abs_diff(other) <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_shape_arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).as_slice(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn broadcast_row_and_col() {
        let m = Tensor::arange(0.0, 6.0).reshape(&[2, 3]);
        let row = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        let col = Tensor::from_vec(vec![100.0, 200.0], &[2, 1]);
        let mr = m.add(&row);
        assert_eq!(mr.as_slice(), &[10.0, 21.0, 32.0, 13.0, 24.0, 35.0]);
        let mc = m.add(&col);
        assert_eq!(mc.as_slice(), &[100.0, 101.0, 102.0, 203.0, 204.0, 205.0]);
    }

    #[test]
    fn broadcast_both_sides() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[1, 3]);
        let c = a.mul(&b);
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.as_slice(), &[10.0, 20.0, 30.0, 20.0, 40.0, 60.0]);
    }

    #[test]
    fn broadcast_scalar_tensor() {
        let a = Tensor::arange(0.0, 4.0).reshape(&[2, 2]);
        let s = Tensor::scalar(2.0);
        assert_eq!(a.mul(&s).as_slice(), &[0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "broadcast")]
    fn incompatible_broadcast_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4]);
        let _ = a.add(&b);
    }

    #[test]
    fn unary_maps() {
        let a = Tensor::from_vec(vec![-1.0, 0.0, 1.0], &[3]);
        assert_eq!(a.relu().as_slice(), &[0.0, 0.0, 1.0]);
        assert_eq!(a.abs().as_slice(), &[1.0, 0.0, 1.0]);
        assert_eq!(a.neg().as_slice(), &[1.0, 0.0, -1.0]);
        assert!((a.sigmoid().as_slice()[1] - 0.5).abs() < 1e-6);
        assert!((a.tanh().as_slice()[2] - 1.0f32.tanh()).abs() < 1e-6);
        assert_eq!(a.clamp(-0.5, 0.5).as_slice(), &[-0.5, 0.0, 0.5]);
    }

    #[test]
    fn exp_ln_roundtrip() {
        let a = Tensor::from_vec(vec![0.5, 1.0, 2.0], &[3]);
        assert!(a.exp().ln().approx_eq(&a, 1e-6));
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor::ones(&[2]);
        a.add_assign(&Tensor::full(&[2], 2.0));
        a.scale_assign(0.5);
        assert_eq!(a.as_slice(), &[1.5, 1.5]);
    }

    #[test]
    fn finite_checks() {
        assert!(Tensor::ones(&[3]).all_finite());
        let bad = Tensor::from_vec(vec![1.0, f32::NAN], &[2]);
        assert!(!bad.all_finite());
    }
}
