//! Shape arithmetic: dimension bookkeeping, strides, and broadcasting rules.

use std::fmt;

/// Error produced by fallible shape operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// The requested reshape does not preserve the number of elements.
    ElementCountMismatch {
        /// Source dims.
        from: Vec<usize>,
        /// Requested dims.
        to: Vec<usize>,
    },
    /// Two shapes cannot be broadcast together.
    BroadcastIncompatible {
        /// Left operand dims.
        lhs: Vec<usize>,
        /// Right operand dims.
        rhs: Vec<usize>,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// Offending axis.
        axis: usize,
        /// Tensor rank.
        rank: usize,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::ElementCountMismatch { from, to } => {
                write!(
                    f,
                    "cannot reshape {from:?} ({} elems) to {to:?} ({} elems)",
                    from.iter().product::<usize>(),
                    to.iter().product::<usize>()
                )
            }
            ShapeError::BroadcastIncompatible { lhs, rhs } => {
                write!(f, "shapes {lhs:?} and {rhs:?} are not broadcast-compatible")
            }
            ShapeError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
        }
    }
}

impl std::error::Error for ShapeError {}

/// A tensor shape: an ordered list of dimension extents.
///
/// `Shape` is a thin wrapper over `Vec<usize>` adding stride computation and
/// the flat-index helpers the kernels need.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Create a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Dimension extents as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for a scalar shape).
    #[inline]
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Whether the shape holds zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extent of dimension `axis`. Panics if out of range.
    #[inline]
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major (C-order) strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// Panics in debug builds if `index` rank or extents mismatch.
    #[inline]
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for axis in (0..self.rank()).rev() {
            debug_assert!(index[axis] < self.0[axis], "index out of bounds");
            off += index[axis] * stride;
            stride *= self.0[axis];
        }
        off
    }

    /// Decompose a flat row-major offset into a multi-dimensional index.
    pub fn unravel(&self, mut offset: usize) -> Vec<usize> {
        let mut idx = vec![0usize; self.rank()];
        for axis in (0..self.rank()).rev() {
            let d = self.0[axis];
            idx[axis] = offset % d;
            offset /= d;
        }
        idx
    }

    /// Validate that `axis < rank`.
    pub fn check_axis(&self, axis: usize) -> Result<(), ShapeError> {
        if axis < self.rank() {
            Ok(())
        } else {
            Err(ShapeError::AxisOutOfRange { axis, rank: self.rank() })
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

/// Compute the broadcast shape of two shapes under numpy rules.
///
/// Trailing dimensions are aligned; a dimension broadcasts if the extents are
/// equal or either is 1.
pub fn broadcast_shapes(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>, ShapeError> {
    let rank = lhs.len().max(rhs.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let l = if i < rank - lhs.len() { 1 } else { lhs[i - (rank - lhs.len())] };
        let r = if i < rank - rhs.len() { 1 } else { rhs[i - (rank - rhs.len())] };
        out[i] = if l == r {
            l
        } else if l == 1 {
            r
        } else if r == 1 {
            l
        } else {
            return Err(ShapeError::BroadcastIncompatible { lhs: lhs.to_vec(), rhs: rhs.to_vec() });
        };
    }
    Ok(out)
}

/// Strides for reading a tensor of shape `src` as if broadcast to `dst`.
///
/// Broadcast dimensions get stride 0 so repeated reads hit the same element.
/// `dst` must be a valid broadcast target of `src` (caller-checked).
pub fn broadcast_strides(src: &[usize], dst: &[usize]) -> Vec<usize> {
    let offset = dst.len() - src.len();
    let src_strides = Shape::new(src).strides();
    let mut out = vec![0usize; dst.len()];
    for i in 0..src.len() {
        out[offset + i] = if src[i] == 1 { 0 } else { src_strides[i] };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_and_unravel_roundtrip() {
        let s = Shape::new(&[3, 4, 5]);
        for flat in 0..s.len() {
            let idx = s.unravel(flat);
            assert_eq!(s.offset(&idx), flat);
        }
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[2, 3], &[3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 4]).unwrap(), vec![2, 4]);
        assert_eq!(broadcast_shapes(&[1], &[7]).unwrap(), vec![7]);
        assert_eq!(broadcast_shapes(&[], &[7]).unwrap(), vec![7]);
    }

    #[test]
    fn broadcast_incompatible() {
        assert!(broadcast_shapes(&[2, 3], &[4]).is_err());
        assert!(broadcast_shapes(&[2, 3], &[3, 2]).is_err());
    }

    #[test]
    fn broadcast_strides_zeroes_stretched_dims() {
        // src [3] into dst [2,3]: leading dim repeats.
        assert_eq!(broadcast_strides(&[3], &[2, 3]), vec![0, 1]);
        // src [2,1] into dst [2,4]: trailing dim repeats.
        assert_eq!(broadcast_strides(&[2, 1], &[2, 4]), vec![1, 0]);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn check_axis_bounds() {
        let s = Shape::new(&[2, 3]);
        assert!(s.check_axis(1).is_ok());
        assert!(matches!(s.check_axis(2), Err(ShapeError::AxisOutOfRange { axis: 2, rank: 2 })));
    }

    #[test]
    fn display_messages() {
        let e = ShapeError::ElementCountMismatch { from: vec![2, 3], to: vec![7] };
        assert!(e.to_string().contains("reshape"));
        let e = ShapeError::BroadcastIncompatible { lhs: vec![2], rhs: vec![3] };
        assert!(e.to_string().contains("broadcast"));
    }
}
