//! Thread-count × SIMD-level determinism sweep: every parallel kernel must
//! produce **bit-identical** results for any pool size *and* any
//! instruction-set level. Each case computes a reference result on a
//! single-threaded pool with the scalar kernels
//! ([`muse_parallel::with_threads`] × [`muse_tensor::simd::with_level`]),
//! then re-runs on pools of 1, 2, 4, and 7 threads crossed with the scalar
//! and AVX2 paths and compares exact f32 bits, swept over deterministic
//! seed families in the style of `crates/autograd/tests/properties.rs`.
//!
//! On machines without AVX2 the `Level::Avx2Fma` leg silently degrades to
//! scalar (the override can only lower the detected level), so the sweep
//! still runs everywhere — it just stops being a cross-ISA comparison.

use muse_parallel::with_threads;
use muse_tensor::conv::{conv2d, conv2d_backward, Conv2dSpec};
use muse_tensor::init::SeededRng;
use muse_tensor::simd::{self, Level};
use muse_tensor::Tensor;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 7];
const LEVEL_SWEEP: [Level; 2] = [Level::Scalar, Level::Avx2Fma];

fn rand_tensor(seed: u64, dims: &[usize], lo: f32, hi: f32) -> Tensor {
    let mut rng = SeededRng::new(seed);
    Tensor::rand_uniform(&mut rng, dims, lo, hi)
}

/// Assert exact bit equality, with a useful message on first divergence.
fn assert_bits_eq(got: &Tensor, want: &Tensor, what: &str, cfg: &str) {
    assert_eq!(got.dims(), want.dims(), "{what}: shape drift at {cfg}");
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}: bit mismatch at element {i} with {cfg}: {g} vs {w}");
    }
}

/// Run `f` on every (SIMD level × pool size) combination and demand
/// bit-identical outputs against the scalar single-threaded reference.
fn sweep(what: &str, f: impl Fn() -> Tensor) {
    let want = simd::with_level(Level::Scalar, || with_threads(1, &f));
    for level in LEVEL_SWEEP {
        for &t in &THREAD_SWEEP {
            let got = simd::with_level(level, || with_threads(t, &f));
            let cfg = format!("{} threads / {}", t, level.name());
            assert_bits_eq(&got, &want, what, &cfg);
        }
    }
}

#[test]
fn matmul_family_is_thread_invariant() {
    for seed in [3u64, 17, 91] {
        // 48*96*64 multiply-adds — far past the parallel dispatch threshold,
        // with row counts that don't divide evenly by 4 or 7.
        let a = rand_tensor(seed, &[48, 96], -1.0, 1.0);
        let b = rand_tensor(seed + 1, &[96, 64], -1.0, 1.0);
        sweep("matmul", || a.matmul(&b));
        let bt = rand_tensor(seed + 2, &[64, 96], -1.0, 1.0);
        sweep("matmul_bt", || a.matmul_bt(&bt));
        let at = rand_tensor(seed + 3, &[96, 48], -1.0, 1.0);
        sweep("matmul_at", || at.matmul_at(&b));
    }
}

#[test]
fn matmul_tail_lanes_are_simd_invariant() {
    // Output widths that leave 8-wide vector tails of every residue class
    // (n mod 8 ∈ {1, 5, 7}) plus inner dims that are not lane multiples.
    for (m, k, n) in [(9usize, 11usize, 17usize), (33, 23, 29), (5, 100, 31)] {
        let a = rand_tensor(201 + n as u64, &[m, k], -1.0, 1.0);
        let b = rand_tensor(203 + n as u64, &[k, n], -1.0, 1.0);
        sweep("matmul_tail", || a.matmul(&b));
        let bt = rand_tensor(205 + n as u64, &[n, k], -1.0, 1.0);
        sweep("matmul_bt_tail", || a.matmul_bt(&bt));
        let at = rand_tensor(207 + n as u64, &[k, m], -1.0, 1.0);
        sweep("matmul_at_tail", || at.matmul_at(&b));
    }
}

#[test]
fn conv2d_forward_is_thread_invariant() {
    for seed in [5u64, 23] {
        let spec = Conv2dSpec::same(2, 6, 3);
        let x = rand_tensor(seed, &[5, 2, 8, 10], -1.0, 1.0);
        let w = rand_tensor(seed + 1, &[6, 2, 3, 3], -1.0, 1.0);
        let b = rand_tensor(seed + 2, &[6], -0.5, 0.5);
        sweep("conv2d", || conv2d(&x, &w, Some(&b), &spec));
    }
}

#[test]
fn conv2d_backward_is_thread_invariant() {
    for seed in [7u64, 29] {
        let spec = Conv2dSpec::same(2, 6, 3);
        let x = rand_tensor(seed, &[5, 2, 8, 10], -1.0, 1.0);
        let w = rand_tensor(seed + 1, &[6, 2, 3, 3], -1.0, 1.0);
        let go = rand_tensor(seed + 2, &[5, 6, 8, 10], -1.0, 1.0);
        // The three gradients are separate accumulations; check each.
        for pick in 0..3 {
            sweep("conv2d_backward", || {
                let (gx, gw, gb) = conv2d_backward(&x, &w, &go, &spec);
                match pick {
                    0 => gx,
                    1 => gw,
                    _ => gb,
                }
            });
        }
    }
}

#[test]
fn conv2d_odd_shapes_are_simd_invariant() {
    // Channel counts and widths chosen to never be multiples of the 8-wide
    // AVX2 vector: every im2col row ends in a partial lane, so the tail
    // handling of the vector kernels is on the critical path.
    for (ci, co, w) in [(1usize, 3usize, 7usize), (3, 5, 9), (5, 1, 13)] {
        let spec = Conv2dSpec::same(ci, co, 3);
        let x = rand_tensor(101 + w as u64, &[3, ci, 5, w], -1.0, 1.0);
        let wt = rand_tensor(103 + w as u64, &[co, ci, 3, 3], -1.0, 1.0);
        let b = rand_tensor(107 + w as u64, &[co], -0.5, 0.5);
        sweep("conv2d_odd", || conv2d(&x, &wt, Some(&b), &spec));
        let go = rand_tensor(109 + w as u64, &[3, co, 5, w], -1.0, 1.0);
        for pick in 0..3 {
            sweep("conv2d_backward_odd", || {
                let (gx, gw, gb) = conv2d_backward(&x, &wt, &go, &spec);
                match pick {
                    0 => gx,
                    1 => gw,
                    _ => gb,
                }
            });
        }
    }
}

#[test]
fn elementwise_ops_are_thread_invariant() {
    // Past the elementwise parallel threshold (1 << 15 elements).
    let n = (1 << 15) + 117;
    let a = rand_tensor(41, &[n], -2.0, 2.0);
    let b = rand_tensor(43, &[n], -2.0, 2.0);
    sweep("add", || a.add(&b));
    sweep("mul", || a.mul(&b));
    sweep("tanh", || a.tanh());
    sweep("sigmoid", || a.sigmoid());
    sweep("add_assign", || {
        let mut c = a.clone();
        c.add_assign(&b);
        c
    });
    sweep("scale_assign", || {
        let mut c = a.clone();
        c.scale_assign(0.37);
        c
    });
}

#[test]
fn reductions_are_thread_invariant() {
    let n = 3 * (1 << 15) + 1031; // several reduce chunks plus a ragged tail
    let a = rand_tensor(53, &[n], -1.0, 1.0);
    sweep("sum", || Tensor::scalar(a.sum()));
    sweep("norm", || Tensor::scalar(a.norm()));
    sweep("variance", || Tensor::scalar(a.variance()));
    let m = rand_tensor(59, &[129, 7, 41], -1.0, 1.0);
    sweep("sum_axis0", || m.sum_axis(0));
    sweep("sum_axis1", || m.sum_axis(1));
    sweep("sum_axis2", || m.sum_axis(2));
    sweep("softmax_last", || m.softmax_last());
}

#[test]
fn parallel_matches_plain_sequential_reference() {
    // The single-threaded pool is not a special case: the parallel kernels
    // at 7 threads must match the plain reference implementation too (up to
    // f32 tolerance — the tiled kernel shares its accumulation order with
    // the reference, but `matmul_reference` works elementwise).
    let a = rand_tensor(71, &[37, 53], -1.0, 1.0);
    let b = rand_tensor(73, &[53, 29], -1.0, 1.0);
    let want = muse_tensor::linalg::matmul_reference(&a, &b);
    let got = with_threads(7, || a.matmul(&b));
    assert!(got.approx_eq(&want, 1e-4), "max diff {}", got.max_abs_diff(&want));
}
