//! Property-style tests for the tensor substrate, driven by the in-tree
//! [`SeededRng`] instead of an external property-testing framework: each
//! test sweeps a deterministic family of random shapes/values, so failures
//! reproduce exactly from the printed seed.

use muse_tensor::conv::{conv2d, conv2d_reference, Conv2dSpec};
use muse_tensor::init::SeededRng;
use muse_tensor::linalg::matmul_reference;
use muse_tensor::{broadcast_shapes, Tensor};

/// Random dims: 1..=3 axes, each of extent 1..=4.
fn small_dims(rng: &mut SeededRng) -> Vec<usize> {
    let rank = 1 + rng.index(3);
    (0..rank).map(|_| 1 + rng.index(4)).collect()
}

#[test]
fn add_commutes() {
    for seed in 0..64u64 {
        let mut rng = SeededRng::new(seed);
        let dims = small_dims(&mut rng);
        let a = Tensor::rand_uniform(&mut rng, &dims, -5.0, 5.0);
        let b = Tensor::rand_uniform(&mut rng, &dims, -5.0, 5.0);
        assert!(a.add(&b).approx_eq(&b.add(&a), 1e-6), "seed {seed}");
    }
}

#[test]
fn broadcast_row_matches_tiling() {
    for seed in 0..64u64 {
        let mut rng = SeededRng::new(seed);
        let (rows, cols) = (1 + rng.index(5), 1 + rng.index(5));
        let m = Tensor::rand_uniform(&mut rng, &[rows, cols], -2.0, 2.0);
        let v = Tensor::rand_uniform(&mut rng, &[cols], -2.0, 2.0);
        let fast = m.add(&v);
        for r in 0..rows {
            for c in 0..cols {
                assert!(
                    (fast.at(&[r, c]) - (m.at(&[r, c]) + v.at(&[c]))).abs() < 1e-6,
                    "seed {seed} at ({r},{c})"
                );
            }
        }
    }
}

#[test]
fn broadcast_shapes_symmetric() {
    for seed in 0..128u64 {
        let mut rng = SeededRng::new(seed);
        let a = small_dims(&mut rng);
        let b = small_dims(&mut rng);
        let ab = broadcast_shapes(&a, &b);
        let ba = broadcast_shapes(&b, &a);
        match (ab, ba) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "seed {seed}"),
            (Err(_), Err(_)) => {}
            _ => panic!("asymmetric broadcast outcome for seed {seed}: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn reshape_roundtrip() {
    for seed in 0..64u64 {
        let mut rng = SeededRng::new(seed);
        let dims = small_dims(&mut rng);
        let t = Tensor::rand_uniform(&mut rng, &dims, -10.0, 10.0);
        let n = t.len();
        let flat = t.clone().reshape(&[n]);
        let back = flat.reshape(&dims);
        assert_eq!(back, t, "seed {seed}");
    }
}

#[test]
fn matmul_matches_reference() {
    for seed in 0..64u64 {
        let mut rng = SeededRng::new(seed);
        let (m, k, n) = (1 + rng.index(5), 1 + rng.index(5), 1 + rng.index(5));
        let a = Tensor::rand_uniform(&mut rng, &[m, k], -3.0, 3.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -3.0, 3.0);
        assert!(a.matmul(&b).approx_eq(&matmul_reference(&a, &b), 1e-3), "seed {seed} [{m},{k}]x[{k},{n}]");
    }
}

#[test]
fn matmul_associative() {
    for seed in 0..64u64 {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::rand_uniform(&mut rng, &[3, 4], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[4, 5], -1.0, 1.0);
        let c = Tensor::rand_uniform(&mut rng, &[5, 2], -1.0, 1.0);
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        assert!(lhs.approx_eq(&rhs, 1e-3), "seed {seed}");
    }
}

#[test]
fn sum_to_preserves_mass() {
    for seed in 0..64u64 {
        let mut rng = SeededRng::new(seed);
        let (rows, cols) = (1 + rng.index(4), 1 + rng.index(4));
        let v = Tensor::rand_uniform(&mut rng, &[cols], -2.0, 2.0);
        let big = v.add(&Tensor::zeros(&[rows, cols])); // broadcast up
        let folded = big.sum_to(&[cols]);
        assert!((big.sum() - folded.sum()).abs() < 1e-4, "seed {seed}");
    }
}

#[test]
fn conv_is_linear() {
    for seed in 0..32u64 {
        let mut rng = SeededRng::new(seed);
        let alpha = rng.uniform(-2.0, 2.0);
        let beta = rng.uniform(-2.0, 2.0);
        let spec = Conv2dSpec::same(1, 2, 3);
        let x = Tensor::rand_uniform(&mut rng, &[1, 1, 4, 4], -1.0, 1.0);
        let y = Tensor::rand_uniform(&mut rng, &[1, 1, 4, 4], -1.0, 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[2, 1, 3, 3], -1.0, 1.0);
        let mixed = conv2d(&x.mul_scalar(alpha).add(&y.mul_scalar(beta)), &w, None, &spec);
        let separate =
            conv2d(&x, &w, None, &spec).mul_scalar(alpha).add(&conv2d(&y, &w, None, &spec).mul_scalar(beta));
        assert!(mixed.approx_eq(&separate, 1e-3), "seed {seed}");
    }
}

#[test]
fn conv_matches_reference_random_geometry() {
    for seed in 0..32u64 {
        let mut rng = SeededRng::new(seed);
        let (h, w) = (3 + rng.index(4), 3 + rng.index(4));
        let (cin, cout) = (1 + rng.index(2), 1 + rng.index(2));
        let spec = Conv2dSpec::same(cin, cout, 3);
        let x = Tensor::rand_uniform(&mut rng, &[1, cin, h, w], -1.0, 1.0);
        let wt = Tensor::rand_uniform(&mut rng, &[cout, cin, 3, 3], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[cout], -1.0, 1.0);
        let fast = conv2d(&x, &wt, Some(&b), &spec);
        let slow = conv2d_reference(&x, &wt, Some(&b), &spec);
        assert!(fast.approx_eq(&slow, 1e-3), "seed {seed} geom {h}x{w} {cin}->{cout}");
    }
}

#[test]
fn conv_matches_reference_odd_shapes() {
    // Odd channel counts and widths: every im2col row length (cin·kh·kw and
    // oh·ow) is a non-multiple of the 8-wide SIMD vector, so the tail lanes
    // of the vectorized GEMM are exercised on both the scalar and AVX2
    // paths. The reference is elementwise, so comparison is approximate.
    use muse_tensor::simd::{self, Level};
    for (cin, cout, w) in [(1usize, 3usize, 7usize), (3, 5, 9), (5, 1, 13)] {
        let mut rng = SeededRng::new(97 + w as u64);
        let spec = Conv2dSpec::same(cin, cout, 3);
        let x = Tensor::rand_uniform(&mut rng, &[2, cin, 5, w], -1.0, 1.0);
        let wt = Tensor::rand_uniform(&mut rng, &[cout, cin, 3, 3], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[cout], -1.0, 1.0);
        let slow = conv2d_reference(&x, &wt, Some(&b), &spec);
        for level in [Level::Scalar, Level::Avx2Fma] {
            let fast = simd::with_level(level, || conv2d(&x, &wt, Some(&b), &spec));
            assert!(
                fast.approx_eq(&slow, 1e-3),
                "{cin}->{cout} w={w} {}: max diff {}",
                level.name(),
                fast.max_abs_diff(&slow)
            );
        }
    }
}

#[test]
fn concat_split_roundtrip() {
    for seed in 0..64u64 {
        let mut rng = SeededRng::new(seed);
        let (rows, c1, c2) = (1 + rng.index(3), 1 + rng.index(3), 1 + rng.index(3));
        let a = Tensor::rand_uniform(&mut rng, &[rows, c1], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[rows, c2], -1.0, 1.0);
        let joined = Tensor::concat(&[&a, &b], 1);
        let parts = joined.split(1, &[c1, c2]);
        assert_eq!(&parts[0], &a, "seed {seed}");
        assert_eq!(&parts[1], &b, "seed {seed}");
    }
}

#[test]
fn softmax_is_distribution() {
    for seed in 0..64u64 {
        let mut rng = SeededRng::new(seed);
        let t = Tensor::rand_uniform(&mut rng, &[3, 5], -10.0, 10.0);
        let s = t.softmax_last();
        assert!(s.all_finite(), "seed {seed}");
        assert!(s.min() >= 0.0, "seed {seed}");
        for r in 0..3 {
            let total: f32 = (0..5).map(|c| s.at(&[r, c])).sum();
            assert!((total - 1.0).abs() < 1e-5, "seed {seed} row {r}: {total}");
        }
    }
}

#[test]
fn permute_inverse_identity() {
    for seed in 0..64u64 {
        let mut rng = SeededRng::new(seed);
        let t = Tensor::rand_uniform(&mut rng, &[2, 3, 4], -1.0, 1.0);
        let perm = [2usize, 0, 1];
        // inverse of [2,0,1] is [1,2,0]
        let inv = [1usize, 2, 0];
        let back = t.permute(&perm).permute(&inv);
        assert_eq!(back, t, "seed {seed}");
    }
}
