//! Property-based tests for the tensor substrate.

use muse_tensor::conv::{conv2d, conv2d_reference, Conv2dSpec};
use muse_tensor::init::SeededRng;
use muse_tensor::linalg::matmul_reference;
use muse_tensor::{broadcast_shapes, Tensor};
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

fn tensor_of(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    prop::collection::vec(-10.0f32..10.0, n).prop_map(move |data| Tensor::from_vec(data, &dims))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// a + b == b + a under broadcasting.
    #[test]
    fn add_commutes(dims in small_dims(), seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::rand_uniform(&mut rng, &dims, -5.0, 5.0);
        let b = Tensor::rand_uniform(&mut rng, &dims, -5.0, 5.0);
        prop_assert!(a.add(&b).approx_eq(&b.add(&a), 1e-6));
    }

    /// Broadcasting a row vector equals manual tiling.
    #[test]
    fn broadcast_row_matches_tiling(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let m = Tensor::rand_uniform(&mut rng, &[rows, cols], -2.0, 2.0);
        let v = Tensor::rand_uniform(&mut rng, &[cols], -2.0, 2.0);
        let fast = m.add(&v);
        for r in 0..rows {
            for c in 0..cols {
                prop_assert!((fast.at(&[r, c]) - (m.at(&[r, c]) + v.at(&[c]))).abs() < 1e-6);
            }
        }
    }

    /// broadcast_shapes is symmetric.
    #[test]
    fn broadcast_shapes_symmetric(a in small_dims(), b in small_dims()) {
        let ab = broadcast_shapes(&a, &b);
        let ba = broadcast_shapes(&b, &a);
        match (ab, ba) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "asymmetric broadcast outcome"),
        }
    }

    /// reshape round-trips and preserves data.
    #[test]
    fn reshape_roundtrip(t in small_dims().prop_flat_map(tensor_of)) {
        let dims = t.dims().to_vec();
        let n = t.len();
        let flat = t.clone().reshape(&[n]);
        let back = flat.reshape(&dims);
        prop_assert_eq!(back, t);
    }

    /// matmul against the naive reference on random sizes.
    #[test]
    fn matmul_matches_reference(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::rand_uniform(&mut rng, &[m, k], -3.0, 3.0);
        let b = Tensor::rand_uniform(&mut rng, &[k, n], -3.0, 3.0);
        prop_assert!(a.matmul(&b).approx_eq(&matmul_reference(&a, &b), 1e-3));
    }

    /// (A B) C == A (B C) within tolerance.
    #[test]
    fn matmul_associative(seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::rand_uniform(&mut rng, &[3, 4], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[4, 5], -1.0, 1.0);
        let c = Tensor::rand_uniform(&mut rng, &[5, 2], -1.0, 1.0);
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    /// sum_to after broadcasting preserves total mass:
    /// sum(broadcast(x)) == sum(sum_to(broadcast(x), dims(x))).
    #[test]
    fn sum_to_preserves_mass(rows in 1usize..5, cols in 1usize..5, seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let v = Tensor::rand_uniform(&mut rng, &[cols], -2.0, 2.0);
        let big = v.add(&Tensor::zeros(&[rows, cols])); // broadcast up
        let folded = big.sum_to(&[cols]);
        prop_assert!((big.sum() - folded.sum()).abs() < 1e-4);
    }

    /// Convolution is linear: conv(ax + by) == a conv(x) + b conv(y).
    #[test]
    fn conv_is_linear(seed in 0u64..500, alpha in -2.0f32..2.0, beta in -2.0f32..2.0) {
        let mut rng = SeededRng::new(seed);
        let spec = Conv2dSpec::same(1, 2, 3);
        let x = Tensor::rand_uniform(&mut rng, &[1, 1, 4, 4], -1.0, 1.0);
        let y = Tensor::rand_uniform(&mut rng, &[1, 1, 4, 4], -1.0, 1.0);
        let w = Tensor::rand_uniform(&mut rng, &[2, 1, 3, 3], -1.0, 1.0);
        let mixed = conv2d(&x.mul_scalar(alpha).add(&y.mul_scalar(beta)), &w, None, &spec);
        let separate = conv2d(&x, &w, None, &spec).mul_scalar(alpha)
            .add(&conv2d(&y, &w, None, &spec).mul_scalar(beta));
        prop_assert!(mixed.approx_eq(&separate, 1e-3));
    }

    /// im2col-based conv equals the direct reference on random geometry.
    #[test]
    fn conv_matches_reference_random_geometry(
        h in 3usize..7, w in 3usize..7, cin in 1usize..3, cout in 1usize..3, seed in 0u64..500,
    ) {
        let mut rng = SeededRng::new(seed);
        let spec = Conv2dSpec::same(cin, cout, 3);
        let x = Tensor::rand_uniform(&mut rng, &[1, cin, h, w], -1.0, 1.0);
        let wt = Tensor::rand_uniform(&mut rng, &[cout, cin, 3, 3], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[cout], -1.0, 1.0);
        let fast = conv2d(&x, &wt, Some(&b), &spec);
        let slow = conv2d_reference(&x, &wt, Some(&b), &spec);
        prop_assert!(fast.approx_eq(&slow, 1e-3));
    }

    /// concat/split round-trip along axis 0 and 1.
    #[test]
    fn concat_split_roundtrip(rows in 1usize..4, c1 in 1usize..4, c2 in 1usize..4, seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::rand_uniform(&mut rng, &[rows, c1], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[rows, c2], -1.0, 1.0);
        let joined = Tensor::concat(&[&a, &b], 1);
        let parts = joined.split(1, &[c1, c2]);
        prop_assert_eq!(&parts[0], &a);
        prop_assert_eq!(&parts[1], &b);
    }

    /// Softmax output is a probability distribution for any input.
    #[test]
    fn softmax_is_distribution(t in tensor_of(vec![3, 5])) {
        let s = t.softmax_last();
        prop_assert!(s.all_finite());
        prop_assert!(s.min() >= 0.0);
        for r in 0..3 {
            let total: f32 = (0..5).map(|c| s.at(&[r, c])).sum();
            prop_assert!((total - 1.0).abs() < 1e-5);
        }
    }

    /// permute twice with inverse permutation is identity.
    #[test]
    fn permute_inverse_identity(seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let t = Tensor::rand_uniform(&mut rng, &[2, 3, 4], -1.0, 1.0);
        let perm = [2usize, 0, 1];
        // inverse of [2,0,1] is [1,2,0]
        let inv = [1usize, 2, 0];
        let back = t.permute(&perm).permute(&inv);
        prop_assert_eq!(back, t);
    }
}
