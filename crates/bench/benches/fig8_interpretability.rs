//! Fig. 8: per-sample row correlations across a time window.

use muse_bench::{criterion_group, criterion_main, Criterion};
use muse_eval::drivers::figutil::{row_correlation, self_similarity};
use muse_tensor::init::SeededRng;
use muse_tensor::Tensor;
use std::hint::black_box;

fn bench_row_correlations(c: &mut Criterion) {
    let mut rng = SeededRng::new(12);
    let a = self_similarity(&Tensor::rand_uniform(&mut rng, &[78, 16], -1.0, 1.0));
    let b = self_similarity(&Tensor::rand_uniform(&mut rng, &[78, 160], -1.0, 1.0));
    c.bench_function("fig8_row_correlations_78", |bch| {
        bch.iter(|| {
            let mut acc = 0.0f32;
            for row in 0..78 {
                acc += row_correlation(&a, &b, row);
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_row_correlations
}
criterion_main!(benches);
