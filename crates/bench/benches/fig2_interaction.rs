//! Fig. 2: per-slot correlation sweep of future flow vs C/P/T.

use muse_bench::bench_profile;
use muse_bench::{criterion_group, criterion_main, Criterion};
use muse_eval::drivers::fig2;
use muse_traffic::dataset::DatasetPreset;
use std::hint::black_box;

fn bench_interaction_sweep(c: &mut Criterion) {
    let profile = bench_profile();
    c.bench_function("fig2_interaction_sweep", |bch| {
        bch.iter(|| black_box(fig2::run(DatasetPreset::NycBike, &profile)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_interaction_sweep
}
criterion_main!(benches);
