//! Table V: weekday/weekend masked metric evaluation.

use muse_bench::{criterion_group, criterion_main, Criterion};
use muse_metrics::error::masked_errors;
use muse_tensor::init::SeededRng;
use muse_tensor::Tensor;
use muse_traffic::masks::weekday_mask;
use std::hint::black_box;

fn bench_weekday_metrics(c: &mut Criterion) {
    let mut rng = SeededRng::new(8);
    let n = 480;
    let pred = Tensor::rand_uniform(&mut rng, &[n, 1, 8, 10], 0.0, 30.0);
    let truth = Tensor::rand_uniform(&mut rng, &[n, 1, 8, 10], 0.0, 30.0);
    let indices: Vec<usize> = (0..n).collect();
    let mask = weekday_mask(&indices, 24, 0);
    c.bench_function("table5_weekday_errors_480", |bch| {
        bch.iter(|| black_box(masked_errors(&pred, &truth, &mask)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_weekday_metrics
}
criterion_main!(benches);
