//! Table I: the analytic complexity model, plus a real MUSE-Net forward at
//! the paper's hyper-parameters (d=64, k=128 on a 8x10 grid slice).

use muse_autograd::Tape;
use muse_bench::{criterion_group, criterion_main, Criterion};
use muse_nn::Session;
use muse_traffic::subseries::batch;
use muse_traffic::SubSeriesSpec;
use musenet::analysis::estimate;
use musenet::{MuseNet, MuseNetConfig};
use std::hint::black_box;

fn bench_estimates(c: &mut Criterion) {
    c.bench_function("table1_analytic_estimates", |bch| {
        bch.iter(|| {
            for m in ["DeepSTN+", "DMSTGCN", "GMAN", "MUSE-Net (Ours)"] {
                black_box(estimate(m, 11, 64, 200, 200 * 200));
            }
        })
    });
}

fn bench_paper_dim_forward(c: &mut Criterion) {
    let prepared = muse_bench::bench_dataset();
    let spec = SubSeriesSpec::paper_default(prepared.dataset.intervals_per_day);
    let mut cfg = MuseNetConfig::paper(prepared.dataset.grid(), spec);
    cfg.resplus_blocks = 1;
    let model = MuseNet::new(cfg);
    let b = batch(&prepared.scaled, &prepared.spec, &prepared.split.test[..2]);
    c.bench_function("table1_musenet_forward_paper_dims", |bch| {
        bch.iter(|| {
            let tape = Tape::new();
            let s = Session::new(&tape);
            black_box(model.eval_graph(&s, &b).terms)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_estimates, bench_paper_dim_forward
}
criterion_main!(benches);
