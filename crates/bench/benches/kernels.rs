//! Micro-benchmarks of the hot computational kernels, plus two end-to-end
//! benches: a daemon-path forecast (`serve_forecast_*`, the muse-serve
//! engine's request latency) and a training step whose steady-state arena
//! traffic is recorded as the `train.steady_alloc` pseudo-kernel (gated by
//! `perf_gate` alongside the real kernels' bytes-per-call).
//!
//! Order matters: `bench_train_step` runs last and resets the metric
//! registry first, so the gated per-kernel bytes-per-call ratios come from
//! identical training steps only.

use muse_bench::{bench_dataset, bench_profile, criterion_group, criterion_main, Criterion};
use muse_tensor::conv::{conv2d, conv2d_backward, Conv2dSpec};
use muse_tensor::init::SeededRng;
use muse_tensor::Tensor;
use muse_traffic::{CityConfig, CitySimulator};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = SeededRng::new(1);
    let a = Tensor::rand_uniform(&mut rng, &[64, 128], -1.0, 1.0);
    let b = Tensor::rand_uniform(&mut rng, &[128, 64], -1.0, 1.0);
    c.bench_function("matmul_64x128x64", |bch| bch.iter(|| black_box(a.matmul(&b))));
    let a2 = Tensor::rand_uniform(&mut rng, &[256, 256], -1.0, 1.0);
    let b2 = Tensor::rand_uniform(&mut rng, &[256, 256], -1.0, 1.0);
    c.bench_function("matmul_256x256x256", |bch| bch.iter(|| black_box(a2.matmul(&b2))));
    c.bench_function("matmul_bt_256x256x256", |bch| bch.iter(|| black_box(a2.matmul_bt(&b2))));
    c.bench_function("matmul_at_256x256x256", |bch| bch.iter(|| black_box(a2.matmul_at(&b2))));
}

fn bench_conv2d(c: &mut Criterion) {
    let mut rng = SeededRng::new(2);
    let spec = Conv2dSpec::same(16, 16, 3);
    let x = Tensor::rand_uniform(&mut rng, &[8, 16, 8, 10], -1.0, 1.0);
    let w = Tensor::rand_uniform(&mut rng, &[16, 16, 3, 3], -0.2, 0.2);
    let b = Tensor::rand_uniform(&mut rng, &[16], -0.1, 0.1);
    c.bench_function("conv2d_b8_c16_8x10", |bch| bch.iter(|| black_box(conv2d(&x, &w, Some(&b), &spec))));
    let y = conv2d(&x, &w, Some(&b), &spec);
    let go = Tensor::rand_uniform(&mut rng, y.dims(), -1.0, 1.0);
    c.bench_function("conv2d_backward_b8_c16_8x10", |bch| {
        bch.iter(|| black_box(conv2d_backward(&x, &w, &go, &spec)))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let mut cfg = CityConfig::small(3);
    cfg.days = 7;
    c.bench_function("simulate_week_small_city", |bch| {
        bch.iter(|| black_box(CitySimulator::new(cfg.clone()).run()))
    });
}

fn bench_backward(c: &mut Criterion) {
    use muse_autograd::Tape;
    let mut rng = SeededRng::new(4);
    let x = Tensor::rand_uniform(&mut rng, &[8, 64], -1.0, 1.0);
    let w = Tensor::rand_uniform(&mut rng, &[64, 64], -0.2, 0.2);
    c.bench_function("tape_forward_backward_mlp", |bch| {
        bch.iter(|| {
            let tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let wv = tape.leaf(w.clone());
            let loss = xv.matmul(&wv).tanh().square().sum();
            black_box(tape.backward(loss));
        })
    });
}

fn bench_fft(c: &mut Criterion) {
    use muse_fft::{Complex, RealFft, WelchPlan};

    // The spectral sweep's two building blocks at representative sizes: one
    // 4096-point real-input transform (the detector's largest segment) and a
    // full Welch-averaged periodogram over a four-week hourly series. Both
    // reuse their plans across iterations, as the sweep does.
    let mut rng = SeededRng::new(6);
    let signal: Vec<f64> = (0..4096)
        .map(|t| 10.0 + (std::f64::consts::TAU * t as f64 / 24.0).cos() + rng.uniform(-0.1, 0.1) as f64)
        .collect();
    let mut fft = RealFft::new(4096);
    let mut spectrum = vec![Complex::default(); fft.spectrum_len()];
    c.bench_function("fft_4096", |bch| {
        bch.iter(|| {
            fft.forward(&signal, &mut spectrum);
            black_box(spectrum[0]);
        })
    });

    let series = &signal[..672];
    let mut welch = WelchPlan::new(muse_fft::segment_for(series.len(), 4096));
    let mut power = Vec::new();
    c.bench_function("periodogram_welch", |bch| {
        bch.iter(|| {
            black_box(welch.periodogram_into(series, &mut power));
        })
    });
}

fn bench_serve_forecast(c: &mut Criterion) {
    use muse_serve::{Engine, EngineOptions};
    use musenet::{MuseNet, MuseNetConfig};
    use std::time::Duration;

    let profile = bench_profile();
    let prepared = bench_dataset();
    let mut cfg = MuseNetConfig::cpu_profile(prepared.dataset.grid(), prepared.spec);
    cfg.d = profile.d;
    cfg.k = profile.k;
    // Zero batch window: each forecast call measures pure request latency
    // (channel round trip + forward-only rollout), not the coalescing stall.
    let opts = EngineOptions { batch_window: Duration::ZERO, ..EngineOptions::default() };
    let engine = Engine::start(move || Ok(MuseNet::new(cfg)), opts).expect("engine boots");
    let frame_len = engine.info().frame_len;
    let src = prepared.scaled.tensor().as_slice();
    for i in 0..engine.info().window_capacity {
        engine.ingest(src[i * frame_len..(i + 1) * frame_len].to_vec()).expect("ingest");
    }
    c.bench_function("serve_forecast_h1", |bch| bch.iter(|| black_box(engine.forecast(1).unwrap())));
    c.bench_function("serve_forecast_h3", |bch| bch.iter(|| black_box(engine.forecast(3).unwrap())));
}

fn bench_pulling_loss(c: &mut Criterion) {
    use muse_autograd::vae_ops::kl_between_fused;
    use muse_autograd::Tape;

    // The model's pulling block (Eqs. 23–25): three branch pairs, three
    // fused KL terms each, summed and differentiated. Batch 8, d=16 mirrors
    // the fig4 training profile's latent shapes.
    let mut rng = SeededRng::new(5);
    let dims = [8usize, 16];
    let branch: Vec<[Tensor; 4]> = (0..3)
        .map(|_| {
            [
                Tensor::rand_uniform(&mut rng, &dims, -1.0, 1.0),
                Tensor::rand_uniform(&mut rng, &dims, -0.8, 0.8),
                Tensor::rand_uniform(&mut rng, &dims, -1.0, 1.0),
                Tensor::rand_uniform(&mut rng, &dims, -0.8, 0.8),
            ]
        })
        .collect();
    c.bench_function("pulling_loss_b8", |bch| {
        bch.iter(|| {
            let tape = Tape::new();
            let vars: Vec<_> = branch
                .iter()
                .map(|[mu_s, lv_s, mu_g, lv_g]| {
                    (
                        tape.leaf(mu_s.clone()),
                        tape.leaf(lv_s.clone()),
                        tape.leaf(mu_g.clone()),
                        tape.leaf(lv_g.clone()),
                    )
                })
                .collect();
            let mut total = None;
            for i in 0..3 {
                for j in (i + 1)..3 {
                    let (mu_si, lv_si, mu_gi, lv_gi) = &vars[i];
                    let (_, _, mu_gj, lv_gj) = &vars[j];
                    let term = kl_between_fused(mu_si, lv_si, mu_gi, lv_gi)
                        .add(&kl_between_fused(mu_si, lv_si, mu_gj, lv_gj))
                        .sub(&kl_between_fused(mu_gi, lv_gi, mu_gj, lv_gj));
                    total = Some(match total {
                        None => term,
                        Some(t) => term.add(&t),
                    });
                }
            }
            black_box(tape.backward(total.expect("three pairs")));
        })
    });
}

fn bench_fleet(c: &mut Criterion) {
    use muse_eval::runner::{channel_errors, fit_model, prepare, ModelKind, Profile};
    use muse_parallel::scheduler::{self, JobsOverrideGuard};
    use muse_parallel::FleetJob;
    use muse_traffic::dataset::DatasetPreset;
    use musenet::AblationVariant;
    use std::cell::RefCell;

    // A fig9-style mini sweep: six full MUSE-Net trainings (distinct seeds,
    // as the sensitivity driver's repeats are) dispatched through the
    // inter-op scheduler. The A side runs sequentially (MUSE_JOBS default),
    // the B side under a jobs=4 fleet — the pair's min-vs-min ratio is the
    // fleet speedup the perf gate stamps and checks.
    let profile = Profile {
        scale: 0.45,
        epochs: 1,
        max_batches: 1,
        max_eval: 8,
        d: 4,
        k: 8,
        hidden: 8,
        channels: 4,
        ..Profile::quick()
    };
    let prepared = prepare(DatasetPreset::NycBike, &profile);
    let plan = prepared.eval_plan(&profile);

    let prepared_ref = &prepared;
    let profile_ref = &profile;
    let plan_ref = plan.as_ref();
    let fleet = || {
        let jobs: Vec<FleetJob<'_, f32>> = (0..6u64)
            .map(|rep| {
                Box::new(move || {
                    let mut p = profile_ref.clone();
                    p.seed = profile_ref.seed + 100 * rep;
                    let model = fit_model(ModelKind::MuseNet(AblationVariant::Full), prepared_ref, &p);
                    let pred = model.predict_unscaled(prepared_ref, &plan_ref.indices);
                    channel_errors(&pred, &plan_ref.truth).0.rmse
                }) as FleetJob<'_, f32>
            })
            .collect();
        muse_parallel::run_fleet("fig9.mini_bench", jobs)
    };

    let guard: RefCell<Option<JobsOverrideGuard>> = RefCell::new(None);
    c.bench_pair(
        "fig9_mini_fleet",
        "fig9_mini_fleet_jobs4",
        || black_box(fleet()),
        || *guard.borrow_mut() = Some(scheduler::override_jobs(4)),
        || {
            guard.borrow_mut().take();
        },
    );
}

fn bench_train_step(c: &mut Criterion) {
    use muse_autograd::Tape;
    use muse_nn::{clip_grad_norm, Adam, Optimizer, Session};
    use muse_tensor::arena;
    use muse_traffic::subseries::{batch_into, Batch};
    use musenet::{MuseNet, MuseNetConfig};

    let profile = bench_profile();
    let prepared = bench_dataset();
    let mut cfg = MuseNetConfig::cpu_profile(prepared.dataset.grid(), prepared.spec);
    cfg.d = profile.d;
    cfg.k = profile.k;
    let model = MuseNet::new(cfg);
    let mut opt = Adam::with_defaults(model.params(), 3e-3);
    let indices: Vec<usize> = prepared.split.train[..8.min(prepared.split.train.len())].to_vec();

    // From here on, every kernel call comes from identical training steps,
    // so per-kernel bytes-per-call in the final `kernel.summary` is a fixed
    // per-iteration ratio — invariant to the harness' calibrated iteration
    // counts. Drop the micro-benches' shape mix (whose averages jitter with
    // calibration) so the perf gate checks deterministic numbers.
    muse_obs::reset_metrics();

    // The trainer's reusable context: one tape/session/staging batch, reset
    // per step so the steady state runs out of the arena.
    let tape = Tape::new();
    let s = Session::new(&tape);
    let mut staging = Batch::staging();
    let mut step = || {
        batch_into(&prepared.scaled, &prepared.spec, &indices, &mut staging);
        tape.reset();
        s.reset();
        let pass = model.train_graph(&s, &staging);
        s.backward(pass.loss);
        clip_grad_norm(opt.params(), 5.0);
        opt.step();
        opt.zero_grad();
        pass.terms.total
    };

    // The training-step bench and its twin with the muse-prof sampler
    // attached at the default 97 Hz, interleaved sample-by-sample so the
    // prof/base ratio is immune to machine-speed drift. The perf gate pairs
    // `<name>_prof<hz>` with `<name>` from the same trace and fails the
    // build if sampling overhead exceeds its band.
    let profiler: std::cell::RefCell<Option<muse_prof::Profiler>> = std::cell::RefCell::new(None);
    c.bench_pair(
        "train_step_fig4_batch8",
        "train_step_fig4_batch8_prof97",
        || black_box(step()),
        || {
            let p = muse_prof::Profiler::start(97.0).expect("start profiler for overhead bench");
            *profiler.borrow_mut() = Some(p);
        },
        || {
            if let Some(p) = profiler.borrow_mut().take() {
                p.stop();
            }
        },
    );

    // Steady-state bytes newly allocated per training step (pool misses
    // only). Recorded as a pseudo-kernel so the perf-gate's bytes-per-call
    // band fails the build if the hot loop starts allocating again.
    let before = arena::stats();
    black_box(step());
    let after = arena::stats();
    let stat = muse_obs::kernel("train.steady_alloc");
    stat.calls.add(1);
    stat.bytes.add(after.alloc_bytes - before.alloc_bytes);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_conv2d, bench_simulator, bench_backward, bench_fft, bench_serve_forecast, bench_pulling_loss, bench_fleet, bench_train_step
}
criterion_main!(benches);
