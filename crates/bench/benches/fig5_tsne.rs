//! Fig. 5: representation extraction and t-SNE embedding.

use muse_bench::{criterion_group, criterion_main, Criterion};
use muse_metrics::tsne::Tsne;
use muse_tensor::init::SeededRng;
use muse_tensor::Tensor;
use std::hint::black_box;

fn bench_tsne(c: &mut Criterion) {
    let mut rng = SeededRng::new(9);
    // Two synthetic representation clusters, 80 rows of 32 dims (the shape
    // the Fig. 5 driver feeds t-SNE at quick scale).
    let mut data = Vec::new();
    for i in 0..80 {
        let center = if i < 40 { -2.0 } else { 2.0 };
        for _ in 0..32 {
            data.push(rng.normal_with(center, 0.5));
        }
    }
    let x = Tensor::from_vec(data, &[80, 32]);
    let tsne = Tsne { perplexity: 15.0, iterations: 100, ..Default::default() };
    c.bench_function("fig5_tsne_80x32_100it", |bch| bch.iter(|| black_box(tsne.embed(&x))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tsne
}
criterion_main!(benches);
