//! Figs. 6-8: cosine similarity matrices and RSA alignment.

use muse_bench::{criterion_group, criterion_main, Criterion};
use muse_metrics::similarity::{cosine_similarity_matrix, positive_fraction};
use muse_tensor::init::SeededRng;
use muse_tensor::Tensor;
use std::hint::black_box;

fn bench_similarity(c: &mut Criterion) {
    let mut rng = SeededRng::new(10);
    let a = Tensor::rand_uniform(&mut rng, &[96, 64], -1.0, 1.0);
    let b = Tensor::rand_uniform(&mut rng, &[96, 64], -1.0, 1.0);
    c.bench_function("fig6_cosine_matrix_96x64", |bch| {
        bch.iter(|| {
            let m = cosine_similarity_matrix(&a, &b);
            black_box(positive_fraction(&m))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_similarity
}
criterion_main!(benches);
