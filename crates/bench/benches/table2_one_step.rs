//! Table II: the per-step cost of every method in the one-step comparison —
//! one optimizer step and one inference batch each.

use muse_bench::{bench_dataset, bench_profile};
use muse_bench::{criterion_group, criterion_main, Criterion};
use muse_eval::runner::{fit_model, FittedModel, ModelKind};
use std::hint::black_box;

fn bench_inference_per_method(c: &mut Criterion) {
    let profile = bench_profile();
    let prepared = bench_dataset();
    let eval_idx: Vec<usize> = prepared.split.test[..8].to_vec();
    for kind in ModelKind::table2_lineup() {
        let model = fit_model(kind, &prepared, &profile);
        let label = format!("table2_infer_{}", model.name().replace([' ', '(', ')', '+'], "_"));
        c.bench_function(&label, |bch| bch.iter(|| black_box(model.predict(&prepared, &eval_idx))));
    }
}

fn bench_train_step_musenet(c: &mut Criterion) {
    use muse_nn::{Optimizer, Session};
    let profile = bench_profile();
    let prepared = bench_dataset();
    let model = fit_model(ModelKind::MuseNet(musenet::AblationVariant::Full), &prepared, &profile);
    let FittedModel::Muse(trainer) = &model else { unreachable!() };
    let b = muse_traffic::subseries::batch(&prepared.scaled, &prepared.spec, &prepared.split.train[..8]);
    let mut opt = muse_nn::Adam::with_defaults(trainer.model().params(), 1e-3);
    c.bench_function("table2_train_step_musenet", |bch| {
        bch.iter(|| {
            let tape = muse_autograd::Tape::new();
            let s = Session::new(&tape);
            let pass = trainer.model().train_graph(&s, &b);
            s.backward(pass.loss);
            opt.step();
            opt.zero_grad();
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_inference_per_method, bench_train_step_musenet
}
criterion_main!(benches);
