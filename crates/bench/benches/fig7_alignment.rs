//! Figs. 7: representation-to-future RSA alignment over a batch.

use muse_bench::{criterion_group, criterion_main, Criterion};
use muse_eval::drivers::figutil::{alignment, self_similarity};
use muse_tensor::init::SeededRng;
use muse_tensor::Tensor;
use std::hint::black_box;

fn bench_alignment(c: &mut Criterion) {
    let mut rng = SeededRng::new(11);
    let rep = Tensor::rand_uniform(&mut rng, &[96, 16], -1.0, 1.0);
    let fut = Tensor::rand_uniform(&mut rng, &[96, 160], -1.0, 1.0);
    c.bench_function("fig7_rsa_alignment_96", |bch| {
        bch.iter(|| {
            let a = self_similarity(&rep);
            let b = self_similarity(&fut);
            black_box(alignment(&a, &b).mean())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_alignment
}
criterion_main!(benches);
