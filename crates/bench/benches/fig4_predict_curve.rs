//! Fig. 4: windowed prediction over consecutive test intervals.

use muse_bench::{bench_dataset, bench_profile};
use muse_bench::{criterion_group, criterion_main, Criterion};
use muse_eval::runner::{fit_model, ModelKind};
use std::hint::black_box;

fn bench_window_prediction(c: &mut Criterion) {
    let profile = bench_profile();
    let prepared = bench_dataset();
    let model = fit_model(ModelKind::MuseNet(musenet::AblationVariant::Full), &prepared, &profile);
    let window: Vec<usize> = prepared.split.test[..24.min(prepared.split.test.len())].to_vec();
    c.bench_function("fig4_window24_prediction", |bch| {
        bch.iter(|| black_box(model.predict_unscaled(&prepared, &window)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_window_prediction
}
criterion_main!(benches);
