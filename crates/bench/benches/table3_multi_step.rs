//! Table III: cost of the 3-horizon autoregressive rollout per method.

use muse_bench::{bench_dataset, bench_profile};
use muse_bench::{criterion_group, criterion_main, Criterion};
use muse_eval::runner::{fit_model, ModelKind};
use std::hint::black_box;

fn bench_rollout(c: &mut Criterion) {
    let profile = bench_profile();
    let prepared = bench_dataset();
    let base: Vec<usize> = prepared.split.test[..4].to_vec();
    for kind in ModelKind::multiperiodic_lineup() {
        let model = fit_model(kind, &prepared, &profile);
        let label = format!("table3_rollout3_{}", model.name().replace([' ', '(', ')', '+'], "_"));
        c.bench_function(&label, |bch| bch.iter(|| black_box(model.predict_multi_step(&prepared, &base, 3))));
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rollout
}
criterion_main!(benches);
