//! Table IV: peak/non-peak masked metric evaluation over a large test set.

use muse_bench::{criterion_group, criterion_main, Criterion};
use muse_metrics::error::masked_errors;
use muse_tensor::init::SeededRng;
use muse_tensor::Tensor;
use muse_traffic::masks::peak_mask;
use std::hint::black_box;

fn bench_masked_metrics(c: &mut Criterion) {
    let mut rng = SeededRng::new(7);
    let n = 480;
    let pred = Tensor::rand_uniform(&mut rng, &[n, 1, 8, 10], 0.0, 30.0);
    let truth = Tensor::rand_uniform(&mut rng, &[n, 1, 8, 10], 0.0, 30.0);
    let indices: Vec<usize> = (0..n).collect();
    let mask = peak_mask(&indices, 24);
    c.bench_function("table4_masked_errors_480", |bch| {
        bch.iter(|| black_box(masked_errors(&pred, &truth, &mask)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_masked_metrics
}
criterion_main!(benches);
