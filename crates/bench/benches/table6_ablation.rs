//! Table VI: objective construction + backward for every ablation variant —
//! measures what each disentanglement component costs per step.

use muse_autograd::Tape;
use muse_bench::{bench_dataset, bench_profile};
use muse_bench::{criterion_group, criterion_main, Criterion};
use muse_nn::Session;
use muse_traffic::subseries::batch;
use musenet::{AblationVariant, MuseNet, MuseNetConfig};

fn bench_variants(c: &mut Criterion) {
    let profile = bench_profile();
    let prepared = bench_dataset();
    let b = batch(&prepared.scaled, &prepared.spec, &prepared.split.train[..8]);
    for variant in AblationVariant::all() {
        let mut cfg = MuseNetConfig::cpu_profile(prepared.dataset.grid(), prepared.spec);
        cfg.d = profile.d;
        cfg.k = profile.k;
        cfg.variant = variant;
        let model = MuseNet::new(cfg);
        let label = format!("table6_step_{}", variant.name().replace(['-', '/'], "_").to_lowercase());
        c.bench_function(&label, |bch| {
            bch.iter(|| {
                let tape = Tape::new();
                let s = Session::new(&tape);
                let pass = model.train_graph(&s, &b);
                s.backward(pass.loss);
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_variants
}
criterion_main!(benches);
