//! Fig. 9: the cost of one sweep point — a short training epoch at a given
//! lambda.

use muse_bench::{bench_dataset, bench_profile};
use muse_bench::{criterion_group, criterion_main, Criterion};
use musenet::{MuseNet, MuseNetConfig, Trainer, TrainerOptions};

fn bench_sweep_point(c: &mut Criterion) {
    let profile = bench_profile();
    let prepared = bench_dataset();
    for lambda in [0.1f32, 1.0, 10.0] {
        let label = format!("fig9_epoch_lambda_{lambda}");
        c.bench_function(&label, |bch| {
            bch.iter(|| {
                let mut cfg = MuseNetConfig::cpu_profile(prepared.dataset.grid(), prepared.spec);
                cfg.d = profile.d;
                cfg.k = profile.k;
                cfg.lambda = lambda;
                let mut t = Trainer::new(
                    MuseNet::new(cfg),
                    TrainerOptions { epochs: 1, max_batches_per_epoch: 2, ..Default::default() },
                );
                t.fit(&prepared.scaled, &prepared.spec, &prepared.split.train, &[]);
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sweep_point
}
criterion_main!(benches);
