//! Fig. 1: detection of level and point shifts in generated traffic.

use muse_bench::bench_profile;
use muse_bench::{criterion_group, criterion_main, Criterion};
use muse_eval::drivers::fig1;
use muse_traffic::dataset::DatasetPreset;
use std::hint::black_box;

fn bench_shift_detection(c: &mut Criterion) {
    let profile = bench_profile();
    c.bench_function("fig1_shift_detection", |bch| {
        bch.iter(|| black_box(fig1::run(DatasetPreset::NycBike, &profile)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_shift_detection
}
criterion_main!(benches);
