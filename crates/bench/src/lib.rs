#![warn(missing_docs)]

//! # muse-bench
//!
//! Shared fixtures for the Criterion benchmark suite. Each bench target
//! (`benches/<name>.rs`) regenerates the computational core of one paper
//! table or figure:
//!
//! | Bench | Paper artifact | Measured workload |
//! |---|---|---|
//! | `table1_complexity` | Table I | analytic complexity model + MUSE-Net forward at paper dims |
//! | `table2_one_step` | Table II | one training step + one inference batch per method |
//! | `table3_multi_step` | Table III | 3-horizon autoregressive rollout |
//! | `table4_peak` | Table IV | masked metric evaluation (peak mask) |
//! | `table5_weekday` | Table V | masked metric evaluation (weekday mask) |
//! | `table6_ablation` | Table VI | train-graph build + backward per ablation variant |
//! | `fig4_predict_curve` | Fig. 4 | windowed batched prediction |
//! | `fig5_tsne` | Fig. 5 | representation extraction + t-SNE embedding |
//! | `fig6_similarity` | Figs. 6–8 | similarity matrices + alignment |
//! | `fig9_sensitivity` | Fig. 9 | one short training epoch per λ value |
//! | `kernels` | — | matmul / conv2d / simulator micro-benches |
//!
//! Full-scale regeneration (with training to convergence) lives in the
//! `muse-eval` binary; these benches keep `cargo bench` minutes-scale while
//! still exercising every experiment's code path.

pub mod harness;

pub use harness::Criterion;

use muse_eval::runner::{prepare, Prepared, Profile};
use muse_traffic::dataset::DatasetPreset;

/// The profile all benches share: very small but structurally complete.
pub fn bench_profile() -> Profile {
    Profile {
        scale: 0.45,
        epochs: 1,
        max_batches: 2,
        max_eval: 16,
        d: 6,
        k: 8,
        hidden: 12,
        channels: 6,
        ..Profile::quick()
    }
}

/// A prepared small dataset, generated once per bench process.
pub fn bench_dataset() -> Prepared {
    prepare(DatasetPreset::NycBike, &bench_profile())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let p = bench_dataset();
        assert!(!p.scaled.is_empty());
        assert!(!p.split.test.is_empty());
    }
}
