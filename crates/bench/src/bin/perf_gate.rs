//! Trace-driven performance regression gate.
//!
//! Replays a `MUSE_OBS` JSONL trace produced by the kernels bench and
//! compares it against a committed baseline (`BENCH_kernels.json`):
//!
//! * per-bench **min_ns** (the per-iteration minimum, robust to scheduler
//!   noise) must stay within a relative tolerance band of the baseline;
//! * per-kernel **bytes per call** from the `kernel.summary` event must
//!   stay within the same band. Per-call traffic for a fixed shape is
//!   deterministic, but the summary aggregates every bench that touches a
//!   kernel and the harness calibrates iteration counts per run, so the
//!   shape mix (and with it the average) jitters; the band still catches a
//!   kernel whose data movement genuinely changed.
//!
//! Raw `kernel.summary` nano totals are *not* compared: the harness
//! calibrates iteration counts per run, so totals are not comparable
//! across runs; only per-iteration statistics are.
//!
//! Baselines are stamped with the SIMD level (`simd_level`) they were
//! recorded under; `check` refuses to compare timings across instruction
//! sets (an AVX2 baseline would mask a scalar-machine regression, and a
//! scalar baseline would make AVX2 runs look like free wins).
//!
//! Bench pairs named `<base>_prof<hz>` / `<base>` (the kernels bench emits
//! `train_step_fig4_batch8_prof97`) additionally gate **sampling overhead**:
//! the profiled run's min_ns may exceed its unprofiled sibling's — from the
//! *same trace*, so machine speed cancels out — by at most
//! `MUSE_PROF_OVERHEAD_TOL` (default 2%).
//!
//! Bench pairs named `<base>_jobs<n>` / `<base>` (the kernels bench emits
//! `fig9_mini_fleet_jobs4`) gate the **fleet speedup**: `record` stamps the
//! measured sequential-over-fleet ratio into the baseline's `fleet` block,
//! and `check` fails when the current ratio — again from the *same trace*,
//! so machine speed cancels out — falls below the stamp by more than the
//! tolerance band. A scheduler change that quietly serializes the fleet
//! (or oversubscribes it into a slowdown) fails the gate even though each
//! individual bench still passes its own min_ns band.
//!
//! ```text
//! perf_gate record <trace.jsonl> <baseline.json>       write a new baseline
//! perf_gate check  <trace.jsonl> <baseline.json> [tol] fail on regressions
//! perf_gate doctor <baseline.json> <out.json>          corrupt a copy of the
//!                                                      baseline (CI negative test)
//! perf_gate doctor-alloc <baseline.json> <out.json>    corrupt the kernel
//!                                                      bytes-per-call instead
//!                                                      (allocation-gate
//!                                                      negative test)
//! perf_gate doctor-isa <baseline.json> <out.json>      flip the recorded SIMD
//!                                                      level (ISA-mismatch
//!                                                      negative test)
//! perf_gate doctor-prof <trace.jsonl> <out.jsonl>      inflate the trace's
//!                                                      `_prof<hz>` timings
//!                                                      (overhead-gate
//!                                                      negative test)
//! perf_gate doctor-fleet <baseline.json> <out.json>    inflate the stamped
//!                                                      fleet speedups
//!                                                      (fleet-gate negative
//!                                                      test)
//! ```
//!
//! Exit codes: 0 pass, 1 regression or malformed input, 2 usage error.

use muse_obs::{json, read_trace, Json};
use muse_tensor::simd;
use muse_trace::tolerance::{self, DEFAULT_TOLERANCE};
use std::process::ExitCode;

/// How much `doctor` shrinks baseline timings: makes any honest run look
/// at least this many times slower than "baseline", guaranteeing failure.
const DOCTOR_SHRINK: f64 = 10.0;

/// What `doctor-alloc` sets every kernel's baseline bytes-per-call to: far
/// from any honest measurement (including an honest 0), so the two-sided
/// drift check must flag every kernel.
const DOCTOR_ALLOC_BYTES: f64 = 1e12;

/// Ceiling on profiled-vs-unprofiled slowdown for `<base>_prof<hz>` bench
/// pairs; override with `MUSE_PROF_OVERHEAD_TOL`.
const PROF_OVERHEAD_MAX: f64 = 0.02;

/// How much `doctor-prof` inflates `_prof<hz>` timings: +50% overhead is far
/// outside the band but inside the ordinary min_ns tolerance, so only the
/// overhead rule trips.
const DOCTOR_PROF_INFLATE: f64 = 1.5;

/// How much `doctor-fleet` inflates the stamped fleet speedups: no honest
/// run gets 10x faster than its own recorded ratio, so the fleet rule must
/// trip while every other rule stays honest.
const DOCTOR_FLEET_INFLATE: f64 = 10.0;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [mode, trace, baseline] if mode == "record" => record(trace, baseline),
        [mode, trace, baseline] if mode == "check" => check(trace, baseline, None),
        [mode, trace, baseline, tol] if mode == "check" => check(trace, baseline, Some(tol)),
        [mode, baseline, out] if mode == "doctor" => doctor(baseline, out),
        [mode, baseline, out] if mode == "doctor-alloc" => doctor_alloc(baseline, out),
        [mode, baseline, out] if mode == "doctor-isa" => doctor_isa(baseline, out),
        [mode, trace, out] if mode == "doctor-prof" => doctor_prof(trace, out),
        [mode, baseline, out] if mode == "doctor-fleet" => doctor_fleet(baseline, out),
        _ => {
            eprintln!(
                "usage: perf_gate record <trace.jsonl> <baseline.json>\n       \
                 perf_gate check  <trace.jsonl> <baseline.json> [tolerance]\n       \
                 perf_gate doctor <baseline.json> <doctored.json>\n       \
                 perf_gate doctor-alloc <baseline.json> <doctored.json>\n       \
                 perf_gate doctor-isa <baseline.json> <doctored.json>\n       \
                 perf_gate doctor-prof <trace.jsonl> <doctored.jsonl>\n       \
                 perf_gate doctor-fleet <baseline.json> <doctored.json>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Per-bench timing and per-kernel traffic extracted from one trace.
struct TraceStats {
    /// `(name, min_ns, mean_ns)` per `bench.result` event, in order.
    benches: Vec<(String, f64, f64)>,
    /// `(kernel, bytes_per_call)` from the final `kernel.summary` event.
    kernels: Vec<(String, f64)>,
}

fn load_trace(path: &str) -> Result<TraceStats, String> {
    let events = read_trace(path).map_err(|e| format!("cannot read trace {path}: {e}"))?;
    let mut benches = Vec::new();
    let mut kernels = Vec::new();
    for ev in &events {
        match ev.get("ev").and_then(Json::as_str) {
            Some("bench.result") => {
                let name = ev.get("name").and_then(Json::as_str).unwrap_or_default().to_string();
                let min = ev.get("min_ns").and_then(Json::as_f64).unwrap_or(0.0);
                let mean = ev.get("mean_ns").and_then(Json::as_f64).unwrap_or(0.0);
                if name.is_empty() || min <= 0.0 {
                    return Err(format!("malformed bench.result in {path}: {}", ev.render()));
                }
                benches.push((name, min, mean));
            }
            Some("kernel.summary") => {
                // Later summaries replace earlier ones: only the final
                // totals cover the whole bench run.
                kernels.clear();
                let Some(Json::Obj(ks)) = ev.get("metrics").and_then(|m| m.get("kernels")).cloned() else {
                    continue;
                };
                for (kname, stat) in ks {
                    let calls = stat.get("calls").and_then(Json::as_f64).unwrap_or(0.0);
                    let bytes = stat.get("bytes").and_then(Json::as_f64).unwrap_or(0.0);
                    if calls > 0.0 {
                        kernels.push((kname, bytes / calls));
                    }
                }
            }
            _ => {}
        }
    }
    if benches.is_empty() {
        return Err(format!("trace {path} contains no bench.result events"));
    }
    Ok(TraceStats { benches, kernels })
}

/// `(fleet bench name, sequential-over-fleet speedup)` for every
/// `<base>_jobs<n>` bench whose unfleeted sibling is in the same trace.
fn fleet_speedups(stats: &TraceStats) -> Vec<(String, f64)> {
    stats
        .benches
        .iter()
        .filter_map(|(name, fleet_min, _)| {
            let base = fleet_base_name(name)?;
            let (_, base_min, _) = stats.benches.iter().find(|(n, _, _)| n == base)?;
            Some((name.clone(), base_min / fleet_min))
        })
        .collect()
}

fn baseline_json(stats: &TraceStats, tolerance: f64) -> Json {
    Json::obj([
        ("tolerance", Json::Num(tolerance)),
        ("simd_level", Json::Str(simd::level_name().to_string())),
        (
            "fleet",
            Json::Obj(
                fleet_speedups(stats)
                    .into_iter()
                    .map(|(name, s)| (name, Json::obj([("speedup", Json::Num(s))])))
                    .collect(),
            ),
        ),
        (
            "benches",
            Json::Obj(
                stats
                    .benches
                    .iter()
                    .map(|(name, min, mean)| {
                        (
                            name.clone(),
                            Json::obj([("min_ns", Json::Num(*min)), ("mean_ns", Json::Num(*mean))]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "kernels",
            Json::Obj(
                stats
                    .kernels
                    .iter()
                    .map(|(name, bpc)| (name.clone(), Json::obj([("bytes_per_call", Json::Num(*bpc))])))
                    .collect(),
            ),
        ),
    ])
}

fn record(trace: &str, baseline: &str) -> Result<(), String> {
    let stats = load_trace(trace)?;
    let json = baseline_json(&stats, DEFAULT_TOLERANCE);
    std::fs::write(baseline, json.render() + "\n")
        .map_err(|e| format!("cannot write baseline {baseline}: {e}"))?;
    println!(
        "perf_gate: recorded {} benches and {} kernels into {baseline}",
        stats.benches.len(),
        stats.kernels.len()
    );
    Ok(())
}

fn load_baseline(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("baseline {path} is not valid JSON: {e:?}"))
}

fn check(trace: &str, baseline_path: &str, cli_tolerance: Option<&String>) -> Result<(), String> {
    let stats = load_trace(trace)?;
    let baseline = load_baseline(baseline_path)?;
    // Precedence: CLI arg, then MUSE_PERF_TOL (both via the shared
    // resolver), then the tolerance the baseline was recorded with.
    let tolerance = tolerance::resolve(cli_tolerance.map(String::as_str))
        .unwrap_or_else(|| baseline.get("tolerance").and_then(Json::as_f64).unwrap_or(DEFAULT_TOLERANCE));
    let mut failures = Vec::new();
    println!("perf_gate: tolerance +{:.0}% vs {baseline_path}", tolerance * 100.0);

    // Timings are only comparable within one instruction set: an AVX2
    // baseline would mask regressions on a scalar machine, and a scalar
    // baseline would make every AVX2 run look like a free win.
    let current = simd::level_name();
    match baseline.get("simd_level").and_then(Json::as_str) {
        Some(recorded) if recorded != current => {
            return Err(format!(
                "baseline {baseline_path} was recorded at SIMD level `{recorded}` but this run \
                 dispatches `{current}`; timings are not comparable across instruction sets — \
                 re-record on this machine (scripts/perf_gate.sh record)"
            ));
        }
        Some(_) => {}
        None => println!(
            "  note: baseline has no simd_level stamp (recorded pre-SIMD); current level is `{current}`"
        ),
    }

    let empty = Vec::new();
    let base_benches = match baseline.get("benches") {
        Some(Json::Obj(fields)) => fields,
        _ => &empty,
    };
    for (name, want) in base_benches {
        let want_min = want.get("min_ns").and_then(Json::as_f64).unwrap_or(0.0);
        match stats.benches.iter().find(|(n, _, _)| n == name) {
            None => failures.push(format!("bench `{name}` missing from trace")),
            Some((_, got_min, _)) => {
                let change = tolerance::rel_change(want_min, *got_min);
                let fail = tolerance::exceeds(want_min, *got_min, tolerance);
                let verdict = if fail { "FAIL" } else { "ok" };
                println!(
                    "  {verdict:<4} {name:<40} baseline {want_min:>12.0} ns  current {got_min:>12.0} ns  ({:+.1}%)",
                    change * 100.0
                );
                if fail {
                    failures.push(format!(
                        "bench `{name}` regressed: {got_min:.0} ns vs baseline {want_min:.0} ns \
                         (+{:.1}%, tolerance +{:.0}%)",
                        change * 100.0,
                        tolerance * 100.0
                    ));
                }
            }
        }
    }
    for (name, _, _) in &stats.benches {
        if !base_benches.iter().any(|(n, _)| n == name) {
            println!("  new  {name:<40} (not in baseline; re-record to start gating it)");
        }
    }

    // Sampling-overhead rule: every `<base>_prof<hz>` bench is compared to
    // its unprofiled sibling within this trace, so the ratio is immune to
    // machine speed and the band can be far tighter than the min_ns one.
    let overhead_tol = prof_overhead_tolerance();
    for (name, prof_min, _) in &stats.benches {
        let Some(base) = prof_base_name(name) else { continue };
        match stats.benches.iter().find(|(n, _, _)| n == base) {
            None => failures.push(format!(
                "bench `{name}` has no unprofiled sibling `{base}` in the trace; \
                 cannot gate sampling overhead"
            )),
            Some((_, base_min, _)) => {
                let overhead = prof_min / base_min - 1.0;
                let fail = overhead > overhead_tol;
                let verdict = if fail { "FAIL" } else { "ok" };
                println!(
                    "  {verdict:<4} {name:<40} prof overhead {:+.2}% vs `{base}` (max +{:.1}%)",
                    overhead * 100.0,
                    overhead_tol * 100.0
                );
                if fail {
                    failures.push(format!(
                        "bench `{name}` sampling overhead {:+.2}% over `{base}` exceeds +{:.1}% \
                         (MUSE_PROF_OVERHEAD_TOL overrides)",
                        overhead * 100.0,
                        overhead_tol * 100.0
                    ));
                }
            }
        }
    }

    // Fleet-speedup rule: every `<base>_jobs<n>` bench is compared to its
    // sequential sibling within this trace (machine speed cancels out) and
    // the ratio must not fall below the baseline's stamped speedup by more
    // than the tolerance band. The stamp is recorded on the gating machine,
    // so a 1-core runner gates ~1x and a many-core runner gates its real
    // parallel win — each catches the fleet quietly serializing on its own
    // hardware.
    let base_fleet = match baseline.get("fleet") {
        Some(Json::Obj(fields)) => fields,
        _ => &empty,
    };
    for (name, speedup) in fleet_speedups(&stats) {
        match base_fleet.iter().find(|(n, _)| n == &name) {
            None => println!("  new  {name:<40} fleet speedup {speedup:.2}x (not in baseline)"),
            Some((_, want)) => {
                let want_speedup = want.get("speedup").and_then(Json::as_f64).unwrap_or(0.0);
                let floor = want_speedup / (1.0 + tolerance);
                let fail = speedup < floor;
                let verdict = if fail { "FAIL" } else { "ok" };
                println!(
                    "  {verdict:<4} {name:<40} fleet speedup {speedup:.2}x  baseline {want_speedup:.2}x  (floor {floor:.2}x)"
                );
                if fail {
                    failures.push(format!(
                        "bench `{name}` fleet speedup fell to {speedup:.2}x vs stamped \
                         {want_speedup:.2}x (floor {floor:.2}x at tolerance +{:.0}%)",
                        tolerance * 100.0
                    ));
                }
            }
        }
    }
    for (name, _, _) in &stats.benches {
        if fleet_base_name(name).is_some_and(|base| !stats.benches.iter().any(|(n, _, _)| n == base)) {
            failures.push(format!(
                "bench `{name}` has no sequential sibling in the trace; cannot gate fleet speedup"
            ));
        }
    }

    let base_kernels = match baseline.get("kernels") {
        Some(Json::Obj(fields)) => fields,
        _ => &empty,
    };
    for (name, want) in base_kernels {
        let want_bpc = want.get("bytes_per_call").and_then(Json::as_f64).unwrap_or(0.0);
        match stats.kernels.iter().find(|(n, _)| n == name) {
            None => failures.push(format!("kernel `{name}` missing from kernel.summary")),
            Some((_, got_bpc)) => {
                if tolerance::drifted(want_bpc, *got_bpc, tolerance) {
                    failures.push(format!(
                        "kernel `{name}` bytes-per-call drifted: {got_bpc:.1} vs baseline {want_bpc:.1}"
                    ));
                }
            }
        }
    }

    if failures.is_empty() {
        println!("perf_gate: PASS ({} benches, {} kernels)", base_benches.len(), base_kernels.len());
        Ok(())
    } else {
        Err(format!("{} regression(s):\n  {}", failures.len(), failures.join("\n  ")))
    }
}

/// Shrink every baseline timing so a subsequent `check` against the
/// doctored file must fail — CI uses this to prove the gate has teeth.
fn doctor(baseline_path: &str, out: &str) -> Result<(), String> {
    let baseline = load_baseline(baseline_path)?;
    let doctored = match baseline {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| if k == "benches" { (k, shrink_benches(v)) } else { (k, v) })
                .collect(),
        ),
        other => other,
    };
    std::fs::write(out, doctored.render() + "\n")
        .map_err(|e| format!("cannot write doctored baseline {out}: {e}"))?;
    println!("perf_gate: wrote doctored baseline (timings /{DOCTOR_SHRINK}) to {out}");
    Ok(())
}

/// Replace every kernel's baseline bytes-per-call with an absurd value so a
/// subsequent `check` must fail on the allocation band — CI uses this to
/// prove the allocation gate (including `train.steady_alloc`) has teeth.
fn doctor_alloc(baseline_path: &str, out: &str) -> Result<(), String> {
    let baseline = load_baseline(baseline_path)?;
    let doctored = match baseline {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| if k == "kernels" { (k, inflate_kernels(v)) } else { (k, v) })
                .collect(),
        ),
        other => other,
    };
    std::fs::write(out, doctored.render() + "\n")
        .map_err(|e| format!("cannot write doctored baseline {out}: {e}"))?;
    println!("perf_gate: wrote alloc-doctored baseline (bytes-per-call = {DOCTOR_ALLOC_BYTES:.0}) to {out}");
    Ok(())
}

/// Flip the recorded SIMD level to the *other* one so a subsequent `check`
/// must fail with the ISA-mismatch error — CI uses this to prove the gate
/// refuses cross-instruction-set comparisons.
fn doctor_isa(baseline_path: &str, out: &str) -> Result<(), String> {
    let baseline = load_baseline(baseline_path)?;
    let flipped = if simd::level_name() == "scalar" { "avx2+fma" } else { "scalar" };
    let doctored = match baseline {
        Json::Obj(fields) => {
            let mut fields: Vec<(String, Json)> =
                fields.into_iter().filter(|(k, _)| k != "simd_level").collect();
            fields.insert(0, ("simd_level".to_string(), Json::Str(flipped.to_string())));
            Json::Obj(fields)
        }
        other => other,
    };
    std::fs::write(out, doctored.render() + "\n")
        .map_err(|e| format!("cannot write doctored baseline {out}: {e}"))?;
    println!("perf_gate: wrote ISA-doctored baseline (simd_level = `{flipped}`) to {out}");
    Ok(())
}

/// `train_step_fig4_batch8_prof97` → `train_step_fig4_batch8`; `None` when
/// the name is not a profiled-sibling bench (suffix must be `_prof<digits>`).
fn prof_base_name(name: &str) -> Option<&str> {
    let (base, hz) = name.rsplit_once("_prof")?;
    if base.is_empty() || hz.is_empty() || !hz.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some(base)
}

/// `fig9_mini_fleet_jobs4` → `fig9_mini_fleet`; `None` when the name is not
/// a fleet-sibling bench (suffix must be `_jobs<digits>`).
fn fleet_base_name(name: &str) -> Option<&str> {
    let (base, n) = name.rsplit_once("_jobs")?;
    if base.is_empty() || n.is_empty() || !n.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some(base)
}

/// Inflate every stamped fleet speedup so a subsequent `check` must fail on
/// the fleet rule (and only on it: timings and kernels are untouched) — CI
/// uses this to prove the fleet gate has teeth.
fn doctor_fleet(baseline_path: &str, out: &str) -> Result<(), String> {
    let baseline = load_baseline(baseline_path)?;
    let mut inflated = 0usize;
    let doctored = match baseline {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| if k == "fleet" { (k, inflate_fleet(v, &mut inflated)) } else { (k, v) })
                .collect(),
        ),
        other => other,
    };
    if inflated == 0 {
        return Err(format!("baseline {baseline_path} has no fleet speedups to inflate"));
    }
    std::fs::write(out, doctored.render() + "\n")
        .map_err(|e| format!("cannot write doctored baseline {out}: {e}"))?;
    println!(
        "perf_gate: wrote fleet-doctored baseline ({inflated} speedups x{DOCTOR_FLEET_INFLATE}) to {out}"
    );
    Ok(())
}

fn inflate_fleet(fleet: Json, inflated: &mut usize) -> Json {
    match fleet {
        Json::Obj(entries) => Json::Obj(
            entries
                .into_iter()
                .map(|(name, stat)| {
                    let bumped = match stat {
                        Json::Obj(fields) => Json::Obj(
                            fields
                                .into_iter()
                                .map(|(k, v)| match v {
                                    Json::Num(n) if k == "speedup" => {
                                        *inflated += 1;
                                        (k, Json::Num(n * DOCTOR_FLEET_INFLATE))
                                    }
                                    other => (k, other),
                                })
                                .collect(),
                        ),
                        other => other,
                    };
                    (name, bumped)
                })
                .collect(),
        ),
        other => other,
    }
}

fn prof_overhead_tolerance() -> f64 {
    match std::env::var("MUSE_PROF_OVERHEAD_TOL") {
        Ok(raw) => match raw.trim().parse::<f64>() {
            Ok(v) if v > 0.0 => v,
            _ => {
                eprintln!("perf_gate: ignoring unusable MUSE_PROF_OVERHEAD_TOL={raw}");
                PROF_OVERHEAD_MAX
            }
        },
        Err(_) => PROF_OVERHEAD_MAX,
    }
}

/// Inflate every `_prof<hz>` bench timing in a *trace* copy so a subsequent
/// `check` against the honest baseline must fail on the overhead rule (and
/// only on it: +50% stays inside the ordinary min_ns band) — CI uses this
/// to prove the sampling-overhead gate has teeth.
fn doctor_prof(trace: &str, out: &str) -> Result<(), String> {
    let events = read_trace(trace).map_err(|e| format!("cannot read trace {trace}: {e}"))?;
    let mut inflated = 0usize;
    let doctored: Vec<String> = events
        .into_iter()
        .map(|ev| {
            let is_prof_bench = ev.get("ev").and_then(Json::as_str) == Some("bench.result")
                && ev.get("name").and_then(Json::as_str).is_some_and(|n| prof_base_name(n).is_some());
            if !is_prof_bench {
                return ev.render();
            }
            inflated += 1;
            match ev {
                Json::Obj(fields) => Json::Obj(
                    fields
                        .into_iter()
                        .map(|(k, v)| match v {
                            Json::Num(n) if k.ends_with("_ns") => (k, Json::Num(n * DOCTOR_PROF_INFLATE)),
                            other => (k, other),
                        })
                        .collect(),
                )
                .render(),
                other => other.render(),
            }
        })
        .collect();
    if inflated == 0 {
        return Err(format!("trace {trace} has no `_prof<hz>` bench.result events to inflate"));
    }
    std::fs::write(out, doctored.join("\n") + "\n")
        .map_err(|e| format!("cannot write doctored trace {out}: {e}"))?;
    println!("perf_gate: wrote prof-doctored trace ({inflated} timings x{DOCTOR_PROF_INFLATE}) to {out}");
    Ok(())
}

fn inflate_kernels(kernels: Json) -> Json {
    match kernels {
        Json::Obj(entries) => Json::Obj(
            entries
                .into_iter()
                .map(|(name, stat)| {
                    let inflated = match stat {
                        Json::Obj(fields) => Json::Obj(
                            fields
                                .into_iter()
                                .map(|(k, v)| {
                                    if k == "bytes_per_call" {
                                        (k, Json::Num(DOCTOR_ALLOC_BYTES))
                                    } else {
                                        (k, v)
                                    }
                                })
                                .collect(),
                        ),
                        other => other,
                    };
                    (name, inflated)
                })
                .collect(),
        ),
        other => other,
    }
}

fn shrink_benches(benches: Json) -> Json {
    match benches {
        Json::Obj(entries) => Json::Obj(
            entries
                .into_iter()
                .map(|(name, stat)| {
                    let shrunk = match stat {
                        Json::Obj(fields) => Json::Obj(
                            fields
                                .into_iter()
                                .map(|(k, v)| match v {
                                    Json::Num(n) if k.ends_with("_ns") => (k, Json::Num(n / DOCTOR_SHRINK)),
                                    other => (k, other),
                                })
                                .collect(),
                        ),
                        other => other,
                    };
                    (name, shrunk)
                })
                .collect(),
        ),
        other => other,
    }
}
