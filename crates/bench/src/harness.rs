//! A tiny, dependency-free benchmark harness exposing the subset of the
//! Criterion API the bench targets use (`Criterion::default()`,
//! `.sample_size(n)`, `.bench_function(name, |b| b.iter(...))` plus the
//! `criterion_group!`/`criterion_main!` macros), so `cargo bench` works
//! fully offline.
//!
//! Reporting is deliberately simple: per benchmark it prints min / mean /
//! max over the configured number of samples, where each sample runs
//! enough iterations to cover a minimum measurement window. When a
//! `MUSE_OBS` trace is open, each benchmark also emits a `bench.result`
//! event, so BENCH_*.json trajectories can be scripted from traces.

use muse_obs as obs;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Minimum wall-clock per sample; iterations scale up to cover it.
const MIN_SAMPLE: Duration = Duration::from_millis(5);

/// Harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        report(name, &bencher.samples);
        self
    }

    /// Run one routine as two interleaved variants (A, B, A, B, …), where
    /// `enter_b`/`exit_b` bracket every B sample outside its timed window
    /// (e.g. attaching a profiler). Back-to-back benchmarks sit in disjoint
    /// wall-clock windows, so frequency scaling or background load between
    /// them can shift a min-vs-min comparison by far more than a small true
    /// difference; interleaving exposes both variants to every machine-speed
    /// phase, making tight A-vs-B bands (like the sampling-overhead gate)
    /// meaningful. Emits a `bench.result` per variant like `bench_function`.
    pub fn bench_pair<O>(
        &mut self,
        name_a: &str,
        name_b: &str,
        mut routine: impl FnMut() -> O,
        mut enter_b: impl FnMut(),
        mut exit_b: impl FnMut(),
    ) -> &mut Self {
        // Shared warm-up + calibration so both variants run identical
        // iteration counts per sample.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (MIN_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut samples_a = Vec::with_capacity(self.sample_size);
        let mut samples_b = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            // One untimed settle iteration after each enter/exit call, so
            // neither timed window starts in the wake of that call's side
            // effects (thread spawn/join for a profiler) — otherwise A
            // systematically absorbs the previous round's exit_b cost and
            // the comparison reads biased fast for B.
            black_box(routine());
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples_a.push((start.elapsed().as_nanos() as u64) / iters);
            enter_b();
            black_box(routine());
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples_b.push((start.elapsed().as_nanos() as u64) / iters);
            exit_b();
        }
        report(name_a, &samples_a);
        report(name_b, &samples_b);
        self
    }
}

fn report(name: &str, samples: &[u64]) {
    let stats = Stats::from_nanos(samples);
    println!(
        "bench {:<40} {:>12} min  {:>12} mean  {:>12} max  ({} samples)",
        name,
        format_nanos(stats.min),
        format_nanos(stats.mean),
        format_nanos(stats.max),
        samples.len(),
    );
    obs::emit_with("bench.result", || {
        vec![
            ("name", obs::Json::Str(name.to_string())),
            ("min_ns", obs::Json::Num(stats.min)),
            ("mean_ns", obs::Json::Num(stats.mean)),
            ("max_ns", obs::Json::Num(stats.max)),
            ("samples", obs::Json::Num(samples.len() as f64)),
        ]
    });
}

/// Per-benchmark measurement state, mirroring `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<u64>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`, recording per-iteration nanoseconds.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up + calibration: how many iterations cover MIN_SAMPLE?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (MIN_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push((start.elapsed().as_nanos() as u64) / iters);
        }
    }
}

struct Stats {
    min: f64,
    mean: f64,
    max: f64,
}

impl Stats {
    fn from_nanos(samples: &[u64]) -> Stats {
        if samples.is_empty() {
            return Stats { min: 0.0, mean: 0.0, max: 0.0 };
        }
        let min = *samples.iter().min().unwrap() as f64;
        let max = *samples.iter().max().unwrap() as f64;
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        Stats { min, mean, max }
    }
}

fn format_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Define a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::harness::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            muse_obs::init_from_env();
            $($group();)+
            if muse_obs::trace_enabled() {
                muse_obs::emit("kernel.summary", vec![("metrics", muse_obs::snapshot())]);
                muse_obs::close_trace();
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u64;
        c.bench_function("harness_smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran >= 3);
    }

    #[test]
    fn bench_pair_interleaves_and_brackets_b() {
        let mut c = Criterion::default().sample_size(4);
        let phase_b = std::cell::Cell::new(false);
        let runs = std::cell::Cell::new(0u64);
        let b_runs = std::cell::Cell::new(0u64);
        c.bench_pair(
            "pair_a",
            "pair_b",
            || {
                runs.set(runs.get() + 1);
                if phase_b.get() {
                    b_runs.set(b_runs.get() + 1);
                }
                runs.get()
            },
            || phase_b.set(true),
            || phase_b.set(false),
        );
        assert!(!phase_b.get(), "exit_b must run after the last B sample");
        assert!(b_runs.get() >= 4, "every B sample must run inside enter/exit");
        assert!(runs.get() > b_runs.get(), "A samples must run outside the B bracket");
    }

    #[test]
    fn stats_and_formatting() {
        let s = Stats::from_nanos(&[100, 200, 300]);
        assert_eq!(s.min, 100.0);
        assert_eq!(s.mean, 200.0);
        assert_eq!(s.max, 300.0);
        assert_eq!(format_nanos(500.0), "500 ns");
        assert_eq!(format_nanos(2_500.0), "2.500 µs");
        assert_eq!(format_nanos(3_000_000.0), "3.000 ms");
        assert_eq!(format_nanos(1.5e9), "1.500 s");
    }
}
