//! End-to-end: train a real (tiny) MUSE-Net with a JSONL trace open, then
//! analyze that trace with the library and with the actual `muse-trace`
//! CLI binary.

use muse_obs as obs;
use muse_tensor::Tensor;
use muse_trace::ingest::TraceData;
use muse_traffic::{FlowSeries, GridMap, SubSeriesSpec};
use musenet::config::MuseNetConfig;
use musenet::model::MuseNet;
use musenet::trainer::{Trainer, TrainerOptions};
use std::path::PathBuf;
use std::process::Command;

/// A tiny synthetic flow series with a strong daily pattern.
fn patterned_flows(grid: GridMap, days: usize, f: usize) -> FlowSeries {
    let t = days * f;
    let mut data = Vec::with_capacity(t * 2 * grid.cells());
    for i in 0..t {
        let hour = (i % f) as f32 / f as f32;
        let level = (2.0 * std::f32::consts::PI * hour).sin() * 0.6;
        for ch in 0..2 {
            for cell in 0..grid.cells() {
                let phase = 0.1 * (cell as f32) + 0.05 * ch as f32;
                data.push((level + phase).tanh());
            }
        }
    }
    FlowSeries::from_tensor(grid, Tensor::from_vec(data, &[t, 2, grid.height, grid.width]))
}

/// Train a tiny model with the trace open; returns the trace path.
fn record_training_trace(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("muse-trace-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    obs::reset_metrics();
    obs::open_trace(&path).unwrap();
    obs::enable();

    let grid = GridMap::new(3, 3);
    let spec = SubSeriesSpec { lc: 2, lp: 2, lt: 1, intervals_per_day: 6, trend_days: 7 };
    let mut cfg = MuseNetConfig::cpu_profile(grid, spec);
    cfg.d = 4;
    cfg.k = 8;
    let flows = patterned_flows(grid, 10, 6);
    let first = spec.min_target();
    let train: Vec<usize> = (first..first + 12).collect();
    let val: Vec<usize> = (first + 12..first + 16).collect();
    let mut trainer = Trainer::new(
        MuseNet::new(cfg.clone()),
        TrainerOptions { epochs: 2, batch_size: 4, learning_rate: 3e-3, ..Default::default() },
    );
    let report = trainer.fit(&flows, &cfg.spec, &train, &val);
    assert_eq!(report.epochs.len(), 2, "training must complete");

    obs::emit("kernel.summary", vec![("metrics", obs::snapshot())]);
    obs::close_trace().expect("trace was open");
    obs::disable();
    obs::reset_metrics();
    path
}

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_muse-trace"))
}

#[test]
fn report_flame_and_diff_work_on_a_real_training_trace() {
    let _g = obs::test_lock();
    let path = record_training_trace("real_run.jsonl");
    let trace = path.to_str().unwrap();

    // Library-level ingestion sees the run and its spans.
    let data = TraceData::load(&path).unwrap();
    assert_eq!(data.runs.len(), 1);
    let run = &data.runs[0];
    assert_eq!(run.epochs.len(), 2);
    assert!(run.epochs_planned == 2 && run.batch_size == 4);
    assert!(run.batches > 0);
    assert!(run.duration_ms.is_some());
    assert!(!data.span_exits.is_empty(), "span tracing must be on during fit");
    let paths: Vec<&str> = data.span_exits.iter().map(|s| s.path.as_str()).collect();
    assert!(paths.contains(&"train.fit"));
    assert!(paths.iter().any(|p| p.starts_with("train.fit/train.forward/model.encode")));
    assert!(!data.kernels.is_empty(), "kernel.summary folded");

    // `muse-trace report` succeeds and shows the run.
    let out = cli().args(["report", trace]).output().unwrap();
    assert!(out.status.success(), "report failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("training runs:"), "{stdout}");
    assert!(stdout.contains("top kernels by time"), "{stdout}");
    assert!(stdout.contains("top spans by self time"), "{stdout}");

    // `muse-trace flame` emits collapsed stacks with nested paths.
    let out = cli().args(["flame", trace]).output().unwrap();
    assert!(out.status.success(), "flame failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.lines().any(|l| l.starts_with("train.fit ") || l.starts_with("train.fit;")), "{stdout}");
    let nested: Vec<&str> = stdout.lines().filter(|l| l.contains(';')).collect();
    assert!(!nested.is_empty(), "expected nested collapsed stacks:\n{stdout}");
    for line in stdout.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("collapsed line has a value");
        assert!(!stack.is_empty());
        value.parse::<u64>().expect("collapsed value is integer nanoseconds");
    }

    // A trace diffed against itself passes.
    let out = cli().args(["diff", trace, trace]).output().unwrap();
    assert!(out.status.success(), "self-diff failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));

    let _ = std::fs::remove_file(&path);
}

#[test]
fn flame_refuses_spanless_trace_and_report_survives_truncation() {
    let _g = obs::test_lock();
    let dir = std::env::temp_dir().join("muse-trace-integration");
    std::fs::create_dir_all(&dir).unwrap();

    // A trace with no span events: flame errors (exit 1), report still works.
    let spanless = dir.join("spanless.jsonl");
    std::fs::write(
        &spanless,
        "{\"ev\":\"eval.experiment\",\"seq\":0,\"experiment\":\"fig4\",\"duration_s\":1.0}\n",
    )
    .unwrap();
    let out = cli().args(["flame", spanless.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no span.exit"));
    let out = cli().args(["report", spanless.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());

    // A trace torn mid-line still reports.
    let torn = dir.join("torn.jsonl");
    std::fs::write(
        &torn,
        "{\"ev\":\"eval.experiment\",\"seq\":0,\"experiment\":\"fig4\",\"duration_s\":1.0}\n{\"ev\":\"tr",
    )
    .unwrap();
    let out = cli().args(["report", torn.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("fig4"));

    let _ = std::fs::remove_file(&spanless);
    let _ = std::fs::remove_file(&torn);
}

#[test]
fn promcheck_accepts_live_exporter_output_and_rejects_junk() {
    let _g = obs::test_lock();
    obs::enable();
    obs::counter("integration.ticks").add(2);
    let h = obs::histogram("integration.lat");
    h.record(5.0);
    h.record(900.0);
    let text = obs::render_prometheus();
    obs::disable();

    let dir = std::env::temp_dir().join("muse-trace-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("metrics_good.txt");
    std::fs::write(&good, &text).unwrap();
    let out = cli().args(["promcheck", good.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("promcheck: OK"));

    let bad = dir.join("metrics_bad.txt");
    std::fs::write(&bad, "this is not an exposition\n").unwrap();
    let out = cli().args(["promcheck", bad.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());

    let _ = std::fs::remove_file(&good);
    let _ = std::fs::remove_file(&bad);
}
