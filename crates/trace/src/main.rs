//! `muse-trace` — analyze muse-obs JSONL traces.
//!
//! ```text
//! muse-trace report <trace.jsonl>                   per-run summary
//! muse-trace diff <base.jsonl> <new.jsonl> [tol]    regression diff
//! muse-trace flame <trace.jsonl> [--out <file>]     collapsed stacks
//! muse-trace promcheck <file|->                     validate /metrics output
//! muse-trace quality <trace.jsonl>                  serve-path quality story
//! muse-trace spectrum <trace.jsonl>                 period-drift story
//! muse-trace prof <p.folded> [--out <file>]         sampled-profile report
//! muse-trace prof diff <base.folded> <new.folded> [tol]  share diff
//! ```
//!
//! Exit codes: 0 ok, 1 regression/validation failure or unreadable input,
//! 2 usage error.

use muse_trace::{diff, flame, ingest::TraceData, prof, prometheus, quality, report, spectrum, tolerance};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    let result = match strs.as_slice() {
        ["report", trace] => cmd_report(trace),
        ["diff", base, current] => cmd_diff(base, current, None),
        ["diff", base, current, tol] => cmd_diff(base, current, Some(tol)),
        ["flame", trace] => cmd_flame(trace, None),
        ["flame", trace, "--out", out] => cmd_flame(trace, Some(out)),
        ["promcheck", input] => cmd_promcheck(input),
        ["quality", trace] => cmd_quality(trace),
        ["spectrum", trace] => cmd_spectrum(trace),
        ["prof", "diff", base, current] => cmd_prof_diff(base, current, None),
        ["prof", "diff", base, current, tol] => cmd_prof_diff(base, current, Some(tol)),
        ["prof", folded] => cmd_prof(folded, None),
        ["prof", folded, "--out", out] => cmd_prof(folded, Some(out)),
        _ => {
            eprintln!(
                "usage: muse-trace report <trace.jsonl>\n       \
                 muse-trace diff <base.jsonl> <new.jsonl> [tolerance]\n       \
                 muse-trace flame <trace.jsonl> [--out <collapsed.txt>]\n       \
                 muse-trace promcheck <metrics.txt|->\n       \
                 muse-trace quality <trace.jsonl>\n       \
                 muse-trace spectrum <trace.jsonl>\n       \
                 muse-trace prof <profile.folded> [--out <flame.txt>]\n       \
                 muse-trace prof diff <base.folded> <new.folded> [tolerance]"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("muse-trace: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<TraceData, String> {
    TraceData::load(path).map_err(|e| format!("cannot read trace {path}: {e}"))
}

fn cmd_report(trace: &str) -> Result<(), String> {
    let data = load(trace)?;
    print!("{}", report::render(&data));
    Ok(())
}

fn cmd_diff(base: &str, current: &str, tol_arg: Option<&str>) -> Result<(), String> {
    let baseline = load(base)?;
    let cur = load(current)?;
    let tol = tolerance::resolve(tol_arg).unwrap_or(tolerance::DEFAULT_TOLERANCE);
    let result = diff::diff(&baseline, &cur, tol);
    print!("{}", result.text);
    if result.regressions.is_empty() {
        Ok(())
    } else {
        Err(format!("{} regression(s)", result.regressions.len()))
    }
}

fn cmd_flame(trace: &str, out: Option<&str>) -> Result<(), String> {
    let data = load(trace)?;
    if data.span_exits.is_empty() {
        return Err(format!(
            "trace {trace} has no span.exit events (was it recorded before span tracing, \
             or with telemetry disabled?)"
        ));
    }
    let folded = flame::fold(&data.span_exits);
    let collapsed = flame::collapsed(&folded);
    match out {
        Some(path) => {
            std::fs::write(path, &collapsed).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("muse-trace: wrote {} collapsed stacks to {path}", collapsed.lines().count());
        }
        None => print!("{collapsed}"),
    }
    // Always surface the ranking on stderr so `flame --out` in CI logs the
    // hot paths without another invocation.
    eprintln!("top spans by self time:");
    for span in flame::by_self_time(&folded).into_iter().take(5) {
        eprintln!(
            "  {:<44} {:>8}x  self {:>10.3} ms  total {:>10.3} ms",
            span.path,
            span.count,
            span.self_ns as f64 / 1e6,
            span.total_ns as f64 / 1e6
        );
    }
    Ok(())
}

fn cmd_quality(trace: &str) -> Result<(), String> {
    let data = load(trace)?;
    print!("{}", quality::render(&data));
    Ok(())
}

fn cmd_spectrum(trace: &str) -> Result<(), String> {
    let data = load(trace)?;
    print!("{}", spectrum::render(&data));
    Ok(())
}

fn load_folded(path: &str) -> Result<prof::FoldedProfile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read profile {path}: {e}"))?;
    prof::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_prof(folded: &str, out: Option<&str>) -> Result<(), String> {
    let profile = load_folded(folded)?;
    print!("{}", prof::report(&profile, 10));
    if let Some(path) = out {
        let flame_text = prof::flame(&profile);
        std::fs::write(path, &flame_text).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("muse-trace: wrote {} flame-ordered stacks to {path}", flame_text.lines().count());
    }
    Ok(())
}

fn cmd_prof_diff(base: &str, current: &str, tol_arg: Option<&str>) -> Result<(), String> {
    let baseline = load_folded(base)?;
    let cur = load_folded(current)?;
    let tol = tolerance::resolve(tol_arg).unwrap_or(tolerance::DEFAULT_TOLERANCE);
    let rows = prof::diff(&baseline, &cur, tol);
    let (text, regressions) = prof::render_diff(&rows, tol);
    print!("{text}");
    if regressions.is_empty() {
        Ok(())
    } else {
        Err(format!("{} profile share drift(s)", regressions.len()))
    }
}

fn cmd_promcheck(input: &str) -> Result<(), String> {
    let text = if input == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).map_err(|e| format!("cannot read stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?
    };
    let exp = prometheus::parse(&text)?;
    exp.validate()?;
    println!("promcheck: OK ({} samples, {} metric families)", exp.samples.len(), exp.types.len());
    Ok(())
}
