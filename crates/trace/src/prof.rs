//! Analysis of collapsed folded-stack profiles (`frame;frame <weight>`),
//! the format the `muse-prof` sampler and `muse-eval --prof` emit.
//!
//! Folded weights are sample counts scaled to nanoseconds (sampling period
//! × hits), so everything here works in time shares rather than absolute
//! durations: two profiles of the same workload at different lengths or
//! rates still line up. [`report`] renders top-N self/total tables plus a
//! `dominant:` line, [`flame`] re-emits the stacks in deterministic flame
//! order, and [`diff`] compares two profiles' self-time shares with the
//! shared [`crate::tolerance`] bands.

use crate::flame::tree_order_indices;
use crate::tolerance;
use std::collections::BTreeMap;

/// A parsed folded profile: leaf stacks with weights.
pub struct FoldedProfile {
    /// `(frames, weight)` per input line, shallowest frame first.
    pub stacks: Vec<(Vec<String>, u64)>,
    /// Sum of all weights (≈ total sampled nanoseconds).
    pub total: u64,
}

/// Parse collapsed folded-stack text. Blank lines are ignored; every other
/// line must be `frame;frame;frame <weight>` with a non-empty stack.
pub fn parse(text: &str) -> Result<FoldedProfile, String> {
    let mut stacks = Vec::new();
    let mut total = 0u64;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (path, raw_weight) =
            line.rsplit_once(' ').ok_or_else(|| format!("line {}: no weight field in {line:?}", i + 1))?;
        let weight: u64 =
            raw_weight.parse().map_err(|_| format!("line {}: bad weight {raw_weight:?}", i + 1))?;
        let frames: Vec<String> = path.split(';').map(str::to_string).collect();
        if frames.iter().any(String::is_empty) {
            return Err(format!("line {}: empty frame in {path:?}", i + 1));
        }
        total += weight;
        stacks.push((frames, weight));
    }
    if stacks.is_empty() {
        return Err("profile contains no stacks (was the sampler running?)".to_string());
    }
    Ok(FoldedProfile { stacks, total })
}

/// Per-path aggregate over a folded profile.
#[derive(Debug, Clone)]
pub struct Node {
    /// Semicolon-joined frame path.
    pub path: String,
    /// Weight sampled with this exact path as the leaf.
    pub self_w: u64,
    /// Weight sampled at or below this path.
    pub total_w: u64,
}

/// Aggregate leaf stacks into one [`Node`] per path prefix (every ancestor
/// of every stack appears), sorted by path.
pub fn aggregate(profile: &FoldedProfile) -> Vec<Node> {
    let mut map: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for (frames, weight) in &profile.stacks {
        let mut path = String::new();
        for (depth, frame) in frames.iter().enumerate() {
            if depth > 0 {
                path.push(';');
            }
            path.push_str(frame);
            let node = map.entry(path.clone()).or_insert((0, 0));
            node.1 += weight;
            if depth == frames.len() - 1 {
                node.0 += weight;
            }
        }
    }
    map.into_iter().map(|(path, (self_w, total_w))| Node { path, self_w, total_w }).collect()
}

fn share(weight: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * weight as f64 / total as f64
    }
}

/// Human report: totals, the dominant frame, and top-N tables by self and
/// by total weight. The `dominant:` line names the hottest self-time path —
/// CI greps it to assert the backward pass stays the training hot spot.
pub fn report(profile: &FoldedProfile, top: usize) -> String {
    let nodes = aggregate(profile);
    let mut by_self: Vec<&Node> = nodes.iter().filter(|n| n.self_w > 0).collect();
    by_self.sort_by(|a, b| b.self_w.cmp(&a.self_w).then_with(|| a.path.cmp(&b.path)));
    let mut by_total: Vec<&Node> = nodes.iter().collect();
    by_total.sort_by(|a, b| b.total_w.cmp(&a.total_w).then_with(|| a.path.cmp(&b.path)));

    let mut out = String::new();
    out.push_str(&format!(
        "folded profile: {} distinct stacks, {:.3} s sampled\n",
        profile.stacks.len(),
        profile.total as f64 * 1e-9
    ));
    if let Some(hot) = by_self.first() {
        out.push_str(&format!("dominant: {} ({:.1}% self)\n", hot.path, share(hot.self_w, profile.total)));
    }
    out.push_str(&format!("\ntop {} by self time:\n", top.min(by_self.len())));
    out.push_str("   self%  total%       self ms  path\n");
    for node in by_self.iter().take(top) {
        out.push_str(&format!(
            "  {:5.1}%  {:5.1}%  {:12.3}  {}\n",
            share(node.self_w, profile.total),
            share(node.total_w, profile.total),
            node.self_w as f64 * 1e-6,
            node.path
        ));
    }
    out.push_str(&format!("\ntop {} by total time:\n", top.min(by_total.len())));
    out.push_str("  total%   self%      total ms  path\n");
    for node in by_total.iter().take(top) {
        out.push_str(&format!(
            "  {:5.1}%  {:5.1}%  {:12.3}  {}\n",
            share(node.total_w, profile.total),
            share(node.self_w, profile.total),
            node.total_w as f64 * 1e-6,
            node.path
        ));
    }
    out
}

/// Re-emit a profile as collapsed stacks in deterministic flame order
/// (depth-first, siblings hottest-self first, name tie-break) — the same
/// ordering contract as `muse-trace flame`.
pub fn flame(profile: &FoldedProfile) -> String {
    let nodes = aggregate(profile);
    let rows: Vec<(&str, u64)> = nodes.iter().map(|n| (n.path.as_str(), n.self_w)).collect();
    let mut out = String::new();
    for idx in tree_order_indices(&rows, ';') {
        let node = &nodes[idx];
        if node.self_w == 0 {
            continue;
        }
        out.push_str(&format!("{} {}\n", node.path, node.self_w));
    }
    out
}

/// Minimum self-time share (percent) a path must hold in either profile to
/// participate in a diff; below this, sampling noise dominates.
pub const DIFF_SHARE_FLOOR_PCT: f64 = 1.0;

/// One row of a profile diff: self-time shares in percent.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Semicolon-joined frame path.
    pub path: String,
    /// Self share in the baseline profile (percent of sampled time).
    pub base_pct: f64,
    /// Self share in the current profile (percent of sampled time).
    pub cur_pct: f64,
    /// Whether the share drifted beyond the tolerance band (two-sided,
    /// via [`tolerance::drifted`] on the percent values).
    pub drifted: bool,
}

/// Compare two profiles' self-time shares. Paths holding at least
/// [`DIFF_SHARE_FLOOR_PCT`] of either profile are compared with the
/// two-sided [`tolerance::drifted`] band (shares are percentages, so the
/// denominator clamp at 1.0 means sub-1% paths can never fail). Returns
/// rows sorted by absolute share change, largest first.
pub fn diff(base: &FoldedProfile, current: &FoldedProfile, tol: f64) -> Vec<DiffRow> {
    let mut shares: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    for node in aggregate(base) {
        shares.entry(node.path).or_insert((0.0, 0.0)).0 = share(node.self_w, base.total);
    }
    for node in aggregate(current) {
        shares.entry(node.path).or_insert((0.0, 0.0)).1 = share(node.self_w, current.total);
    }
    let mut rows: Vec<DiffRow> = shares
        .into_iter()
        .filter(|(_, (b, c))| b.max(*c) >= DIFF_SHARE_FLOOR_PCT)
        .map(|(path, (base_pct, cur_pct))| DiffRow {
            path,
            base_pct,
            cur_pct,
            drifted: tolerance::drifted(base_pct, cur_pct, tol),
        })
        .collect();
    rows.sort_by(|a, b| {
        let da = (a.cur_pct - a.base_pct).abs();
        let db = (b.cur_pct - b.base_pct).abs();
        db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal).then_with(|| a.path.cmp(&b.path))
    });
    rows
}

/// Render a diff as a table; returns `(text, regressions)` where
/// regressions are the drifted paths (empty = within tolerance).
pub fn render_diff(rows: &[DiffRow], tol: f64) -> (String, Vec<String>) {
    let mut out = String::new();
    let mut regressions = Vec::new();
    out.push_str(&format!(
        "profile diff (self-time shares, two-sided tolerance {:.0}%, floor {DIFF_SHARE_FLOOR_PCT}%):\n",
        tol * 100.0
    ));
    out.push_str("          base%    cur%   Δpp  path\n");
    for row in rows {
        let delta = row.cur_pct - row.base_pct;
        let mark = if row.drifted { "DRIFT" } else { "   ok" };
        out.push_str(&format!(
            "  {mark}  {:5.1}%  {:5.1}%  {delta:+5.1}  {}\n",
            row.base_pct, row.cur_pct, row.path
        ));
        if row.drifted {
            regressions.push(row.path.clone());
        }
    }
    if rows.is_empty() {
        out.push_str("  (no path holds ≥1% self time in either profile)\n");
    }
    (out, regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
train.fit;train.backward;autograd.backward 6000\n\
train.fit;train.backward 500\n\
train.fit;train.forward 2500\n\
train.fit 1000\n";

    #[test]
    fn parse_rejects_junk_and_empty() {
        assert!(parse("").is_err());
        assert!(parse("no_weight_here").is_err());
        assert!(parse("a;b notanumber").is_err());
        assert!(parse("a;;b 10").is_err());
        let p = parse(SAMPLE).unwrap();
        assert_eq!(p.stacks.len(), 4);
        assert_eq!(p.total, 10_000);
    }

    #[test]
    fn aggregate_computes_self_and_total() {
        let p = parse(SAMPLE).unwrap();
        let nodes = aggregate(&p);
        let get = |path: &str| nodes.iter().find(|n| n.path == path).unwrap();
        assert_eq!(get("train.fit").total_w, 10_000);
        assert_eq!(get("train.fit").self_w, 1000);
        assert_eq!(get("train.fit;train.backward").total_w, 6500);
        assert_eq!(get("train.fit;train.backward").self_w, 500);
        assert_eq!(get("train.fit;train.backward;autograd.backward").self_w, 6000);
    }

    #[test]
    fn report_names_the_dominant_self_path() {
        let p = parse(SAMPLE).unwrap();
        let text = report(&p, 5);
        assert!(
            text.contains("dominant: train.fit;train.backward;autograd.backward (60.0% self)"),
            "report:\n{text}"
        );
        assert!(text.contains("top 4 by self time"));
        assert!(text.contains("train.fit;train.forward"));
    }

    #[test]
    fn flame_output_is_deterministic_and_ordered() {
        let p = parse(SAMPLE).unwrap();
        let text = flame(&p);
        let paths: Vec<&str> = text.lines().map(|l| l.rsplit_once(' ').unwrap().0).collect();
        // Depth-first from train.fit, siblings by self time: forward (self
        // 2500) before backward (self 500), backward's leaf right after it.
        assert_eq!(
            paths,
            vec![
                "train.fit",
                "train.fit;train.forward",
                "train.fit;train.backward",
                "train.fit;train.backward;autograd.backward"
            ]
        );
        assert_eq!(text, flame(&parse(&text).unwrap()), "flame must be a fixed point");
    }

    #[test]
    fn self_diff_is_clean_and_shifts_drift() {
        let p = parse(SAMPLE).unwrap();
        let rows = diff(&p, &p, 0.5);
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| !r.drifted));
        // Shift most of the backward time into the forward pass: both ends
        // of the swap drift.
        let shifted = parse(
            "train.fit;train.backward;autograd.backward 1000\n\
             train.fit;train.backward 500\n\
             train.fit;train.forward 7500\n\
             train.fit 1000\n",
        )
        .unwrap();
        let rows = diff(&p, &shifted, 0.5);
        let (text, regressions) = render_diff(&rows, 0.5);
        assert!(regressions.iter().any(|p| p.contains("autograd.backward")), "diff:\n{text}");
        assert!(regressions.iter().any(|p| p.contains("train.forward")), "diff:\n{text}");
        // Unchanged paths stay ok.
        assert!(rows.iter().any(|r| r.path == "train.fit" && !r.drifted), "diff:\n{text}");
    }

    #[test]
    fn sub_floor_paths_are_ignored_by_diff() {
        let a = parse("hot 995\ncold 5\n").unwrap();
        let b = parse("hot 1000\n").unwrap();
        let rows = diff(&a, &b, 0.5);
        // cold holds 0.5% < floor in both → excluded entirely.
        assert!(rows.iter().all(|r| r.path != "cold"));
        assert!(rows.iter().all(|r| !r.drifted));
    }
}
