//! Side-by-side comparison of two traces with regression highlighting.
//!
//! `muse-trace diff <baseline> <current>` pairs up what the two traces
//! share and flags regressions using the *same* tolerance band as the perf
//! gate ([`crate::tolerance`]):
//!
//! * benches — `min_ns` one-sided (slower fails);
//! * kernels — `nanos_per_call` one-sided, `bytes_per_call` two-sided
//!   drift;
//! * training runs (paired by position) — final loss and best validation
//!   RMSE one-sided (higher fails), throughput one-sided (lower fails);
//! * span totals — reported, never failed (span totals scale with run
//!   length, which legitimately differs between traces).

use crate::flame;
use crate::ingest::TraceData;
use crate::tolerance;

/// Outcome of a diff: the rendered text and whether any regression was
/// found (drives the CLI exit code).
pub struct DiffReport {
    /// Human-readable side-by-side rendering.
    pub text: String,
    /// Regression descriptions (empty = pass).
    pub regressions: Vec<String>,
}

/// Compare `current` against `baseline` with the given tolerance.
pub fn diff(baseline: &TraceData, current: &TraceData, tol: f64) -> DiffReport {
    let mut text = String::new();
    let mut regressions = Vec::new();
    text.push_str(&format!(
        "diff: {} (baseline) vs {} (current), tolerance +{:.0}%\n",
        baseline.path.display(),
        current.path.display(),
        tol * 100.0
    ));

    if !baseline.benches.is_empty() || !current.benches.is_empty() {
        text.push_str("benches (min_ns):\n");
        for base in &baseline.benches {
            match current.benches.iter().find(|b| b.name == base.name) {
                None => {
                    regressions.push(format!("bench `{}` missing from current trace", base.name));
                    text.push_str(&format!("  GONE {:<40} baseline {:>12.0} ns\n", base.name, base.min_ns));
                }
                Some(cur) => {
                    let change = tolerance::rel_change(base.min_ns, cur.min_ns);
                    let fail = tolerance::exceeds(base.min_ns, cur.min_ns, tol);
                    text.push_str(&format!(
                        "  {} {:<40} {:>12.0} -> {:>12.0} ns  ({:+.1}%)\n",
                        verdict(fail),
                        base.name,
                        base.min_ns,
                        cur.min_ns,
                        change * 100.0
                    ));
                    if fail {
                        regressions.push(format!(
                            "bench `{}` slowed {:+.1}% (tolerance +{:.0}%)",
                            base.name,
                            change * 100.0,
                            tol * 100.0
                        ));
                    }
                }
            }
        }
        for cur in &current.benches {
            if !baseline.benches.iter().any(|b| b.name == cur.name) {
                text.push_str(&format!(
                    "  new  {:<40} {:>12.0} ns (not in baseline)\n",
                    cur.name, cur.min_ns
                ));
            }
        }
    }

    if !baseline.kernels.is_empty() {
        text.push_str("kernels (ns/call, bytes/call):\n");
        for base in &baseline.kernels {
            let Some(cur) = current.kernels.iter().find(|k| k.name == base.name) else {
                text.push_str(&format!("  GONE {:<28} (absent in current)\n", base.name));
                continue;
            };
            let (bn, cn) = (base.nanos_per_call(), cur.nanos_per_call());
            let (bb, cb) = (base.bytes_per_call(), cur.bytes_per_call());
            let slow = tolerance::exceeds(bn, cn, tol);
            let drift = tolerance::drifted(bb, cb, tol);
            text.push_str(&format!(
                "  {} {:<28} {:>10.1} -> {:>10.1} ns/call ({:+.1}%)  {:>10.1} -> {:>10.1} B/call\n",
                verdict(slow || drift),
                base.name,
                bn,
                cn,
                tolerance::rel_change(bn, cn) * 100.0,
                bb,
                cb,
            ));
            if slow {
                regressions.push(format!(
                    "kernel `{}` slowed {:+.1}% per call",
                    base.name,
                    tolerance::rel_change(bn, cn) * 100.0
                ));
            }
            if drift {
                regressions.push(format!("kernel `{}` bytes/call drifted: {bb:.1} -> {cb:.1}", base.name));
            }
        }
    }

    let paired = baseline.runs.len().min(current.runs.len());
    if paired > 0 {
        text.push_str("training runs (paired by position):\n");
        for i in 0..paired {
            let (b, c) = (&baseline.runs[i], &current.runs[i]);
            text.push_str(&format!("  pair {} (runs {} vs {}):\n", i, b.run, c.run));
            let mut metric = |label: &str, bv: Option<f64>, cv: Option<f64>, higher_is_worse: bool| {
                let (Some(bv), Some(cv)) = (bv, cv) else {
                    text.push_str(&format!("    -    {label:<16} (absent in one trace)\n"));
                    return;
                };
                let (base_cmp, cur_cmp) = if higher_is_worse { (bv, cv) } else { (cv, bv) };
                let fail = tolerance::exceeds(base_cmp, cur_cmp, tol);
                text.push_str(&format!("    {} {label:<16} {bv:>12.4} -> {cv:>12.4}\n", verdict(fail)));
                if fail {
                    regressions.push(format!("run pair {i}: {label} regressed {bv:.4} -> {cv:.4}"));
                }
            };
            metric("last_loss", b.last_loss(), c.last_loss(), true);
            metric("best_val_rmse", b.best_val_rmse, c.best_val_rmse, true);
            metric("samples_per_sec", Some(b.mean_samples_per_sec()), Some(c.mean_samples_per_sec()), false);
            if c.skipped_batches > b.skipped_batches {
                regressions.push(format!(
                    "run pair {i}: skipped batches rose {} -> {}",
                    b.skipped_batches, c.skipped_batches
                ));
                text.push_str(&format!(
                    "    FAIL skipped_batches  {:>12} -> {:>12}\n",
                    b.skipped_batches, c.skipped_batches
                ));
            }
        }
    }

    if !baseline.span_exits.is_empty() && !current.span_exits.is_empty() {
        let bf = flame::fold(&baseline.span_exits);
        let cf = flame::fold(&current.span_exits);
        text.push_str("span totals (informational):\n");
        for span in flame::by_self_time(&bf).into_iter().take(6) {
            if let Some(cur) = cf.iter().find(|s| s.path == span.path) {
                text.push_str(&format!(
                    "       {:<44} {:>10.3} -> {:>10.3} ms total\n",
                    span.path,
                    span.total_ns as f64 / 1e6,
                    cur.total_ns as f64 / 1e6,
                ));
            }
        }
    }

    text.push_str(&if regressions.is_empty() {
        "diff: PASS\n".to_string()
    } else {
        format!("diff: {} regression(s):\n  {}\n", regressions.len(), regressions.join("\n  "))
    });
    DiffReport { text, regressions }
}

fn verdict(fail: bool) -> &'static str {
    if fail {
        "FAIL"
    } else {
        "ok  "
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{BenchResult, KernelRow, TrainRun};

    fn bench(name: &str, min_ns: f64) -> BenchResult {
        BenchResult { name: name.into(), min_ns, mean_ns: min_ns * 1.2, max_ns: min_ns * 2.0, samples: 10 }
    }

    #[test]
    fn identical_traces_pass() {
        let mk = || TraceData {
            benches: vec![bench("gemm", 1000.0)],
            kernels: vec![KernelRow { name: "k".into(), calls: 10.0, nanos: 1000.0, bytes: 640.0 }],
            ..TraceData::default()
        };
        let report = diff(&mk(), &mk(), 0.75);
        assert!(report.regressions.is_empty(), "{}", report.text);
        assert!(report.text.contains("PASS"));
    }

    #[test]
    fn slowdown_beyond_band_fails_speedup_passes() {
        let base = TraceData { benches: vec![bench("gemm", 1000.0)], ..TraceData::default() };
        let slow = TraceData { benches: vec![bench("gemm", 2000.0)], ..TraceData::default() };
        let fast = TraceData { benches: vec![bench("gemm", 100.0)], ..TraceData::default() };
        assert_eq!(diff(&base, &slow, 0.75).regressions.len(), 1);
        assert!(diff(&base, &fast, 0.75).regressions.is_empty());
    }

    #[test]
    fn missing_bench_is_a_regression_new_bench_is_not() {
        let base = TraceData { benches: vec![bench("gemm", 1000.0)], ..TraceData::default() };
        let cur = TraceData { benches: vec![bench("conv", 500.0)], ..TraceData::default() };
        let report = diff(&base, &cur, 0.75);
        assert_eq!(report.regressions.len(), 1);
        assert!(report.text.contains("new  conv"));
    }

    #[test]
    fn bytes_per_call_drift_fails_both_directions() {
        let mk = |bytes: f64| TraceData {
            kernels: vec![KernelRow { name: "k".into(), calls: 10.0, nanos: 100.0, bytes }],
            ..TraceData::default()
        };
        assert!(!diff(&mk(1000.0), &mk(1100.0), 0.75).regressions.iter().any(|r| r.contains("drifted")));
        assert!(diff(&mk(1000.0), &mk(10.0), 0.75).regressions.iter().any(|r| r.contains("drifted")));
        assert!(diff(&mk(1000.0), &mk(5000.0), 0.75).regressions.iter().any(|r| r.contains("drifted")));
    }

    #[test]
    fn run_regressions_pair_by_position() {
        let mk = |loss: f64, skipped: usize| TraceData {
            runs: vec![TrainRun {
                run: 1,
                epochs: vec![crate::ingest::EpochRow {
                    epoch: 0,
                    train_loss: loss,
                    train_regression: loss,
                    val_rmse: None,
                    skipped_batches: skipped,
                    batches: 1,
                    duration_ms: 1.0,
                    samples_per_sec: 100.0,
                    kl_exclusive: 0.0,
                    kl_interactive: 0.0,
                    reconstruction: 0.0,
                    pulling: 0.0,
                }],
                skipped_batches: skipped,
                ..TrainRun::default()
            }],
            ..TraceData::default()
        };
        let report = diff(&mk(1.0, 0), &mk(5.0, 2), 0.75);
        assert!(report.regressions.iter().any(|r| r.contains("last_loss")), "{}", report.text);
        assert!(report.regressions.iter().any(|r| r.contains("skipped batches")), "{}", report.text);
    }
}
