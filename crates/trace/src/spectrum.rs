//! `muse-trace spectrum` — reconstruct the daemon's period-drift story
//! from a trace: the dominant-period trajectory across spectral sweeps,
//! where the dominant period moved, and how the `spectral-shift` alert
//! chronology lines up with those moves.

use crate::ingest::{SpectralSweep, TraceData};
use std::collections::BTreeMap;

/// The metric the spectral-shift alert rule watches; transitions on it are
/// correlated with the sweep trajectory.
const SPECTRAL_METRIC: &str = "spectral.period_intervals";

/// How many sweep rows are printed in full (the trajectory keeps every
/// dominant-period move regardless).
const SWEEP_ROWS: usize = 24;

/// Render the spectrum report for a loaded trace.
pub fn render(data: &TraceData) -> String {
    let mut out = String::new();
    out.push_str(&format!("trace: {} ({} events)\n", data.path.display(), data.events.len()));

    if data.spectral_sweeps.is_empty() {
        out.push_str(
            "(no spectral.sweep events — run muse-serve with --trace and a nonzero \
             --spectral-every, and stream enough frames through /ingest)\n",
        );
        return out;
    }

    let productive = data.spectral_sweeps.iter().filter(|s| s.dominant().is_some()).count();
    out.push_str(&format!(
        "spectrum: {} sweep(s), {productive} with a dominant period\n",
        data.spectral_sweeps.len()
    ));

    render_trajectory(&mut out, &data.spectral_sweeps);
    render_shifts(&mut out, &data.spectral_sweeps);
    render_alerts(&mut out, data);
    out
}

/// Sweep-by-sweep table: every dominant-period move is always printed;
/// steady stretches are elided past [`SWEEP_ROWS`] rows.
fn render_trajectory(out: &mut String, sweeps: &[SpectralSweep]) {
    out.push_str("sweep trajectory:\n");
    out.push_str(&format!(
        "  {:>6} {:>8} {:>9} {:>7} {:>8}  {}\n",
        "sweep", "index", "dominant", "share", "snr", "all periods"
    ));
    let mut previous: Option<usize> = None;
    let mut printed = 0usize;
    let mut elided = 0usize;
    for s in sweeps {
        let dominant = s.dominant().map(|p| p.intervals);
        let moved = dominant.is_some() && previous.is_some() && dominant != previous;
        if printed >= SWEEP_ROWS && !moved {
            elided += 1;
            if dominant.is_some() {
                previous = dominant;
            }
            continue;
        }
        let all: Vec<String> = s.periods.iter().map(|p| p.intervals.to_string()).collect();
        let marker = if moved { "  <-- PERIOD SHIFT" } else { "" };
        match s.dominant() {
            Some(p) => out.push_str(&format!(
                "  {:>6} {:>8} {:>9} {:>7.3} {:>8.1}  [{}]{marker}\n",
                s.sweep,
                s.index,
                p.intervals,
                p.power_share,
                p.snr,
                all.join(", "),
            )),
            None => out
                .push_str(&format!("  {:>6} {:>8} {:>9} {:>7} {:>8}  []\n", s.sweep, s.index, "-", "-", "-")),
        }
        if dominant.is_some() {
            previous = dominant;
        }
        printed += 1;
    }
    if elided > 0 {
        out.push_str(&format!("  ({elided} steady sweep(s) elided)\n"));
    }
}

/// Distinct dominant-period regimes in sweep order, plus each move.
fn render_shifts(out: &mut String, sweeps: &[SpectralSweep]) {
    let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
    let mut moves: Vec<(u64, u64, usize, usize)> = Vec::new();
    let mut previous: Option<(u64, usize)> = None;
    for s in sweeps {
        let Some(p) = s.dominant() else { continue };
        *counts.entry(p.intervals).or_default() += 1;
        if let Some((_, prev)) = previous {
            if prev != p.intervals {
                moves.push((s.sweep, s.index, prev, p.intervals));
            }
        }
        previous = Some((s.sweep, p.intervals));
    }
    out.push_str("dominant periods (sweeps at each):\n");
    for (period, n) in &counts {
        out.push_str(&format!("  {period:>9} intervals  {n} sweep(s)\n"));
    }
    if moves.is_empty() {
        out.push_str("no dominant-period moves\n");
    } else {
        out.push_str(&format!("{} dominant-period move(s):\n", moves.len()));
        for (sweep, index, from, to) in &moves {
            out.push_str(&format!("  sweep {sweep} (frame {index}): {from} -> {to} intervals\n"));
        }
    }
}

/// The spectral-shift alert chronology, restricted to transitions on the
/// spectral metric.
fn render_alerts(out: &mut String, data: &TraceData) {
    let spectral: Vec<_> = data.alert_events.iter().filter(|a| a.metric == SPECTRAL_METRIC).collect();
    if spectral.is_empty() {
        out.push_str("no spectral alert transitions\n");
        return;
    }
    out.push_str("spectral alert transitions:\n");
    let mut last = "";
    for a in &spectral {
        let marker = if a.to == "firing" { "  <-- FIRING" } else { "" };
        out.push_str(&format!(
            "  {:<24} {:>8} -> {:<8} (dominant = {} intervals){marker}\n",
            a.alert, a.from, a.to, a.value
        ));
        last = &a.to;
    }
    out.push_str(&format!("final spectral alert state: {last}\n"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{AlertEvent, SweepPeriod};

    fn sweep(n: u64, index: u64, periods: &[(usize, f64)]) -> SpectralSweep {
        SpectralSweep {
            sweep: n,
            index,
            periods: periods
                .iter()
                .map(|&(intervals, power_share)| SweepPeriod { intervals, power_share, snr: 20.0 })
                .collect(),
        }
    }

    #[test]
    fn empty_trace_points_at_the_daemon_flags() {
        let text = render(&TraceData::default());
        assert!(text.contains("no spectral.sweep events"), "{text}");
        assert!(text.contains("--spectral-every"), "{text}");
    }

    #[test]
    fn period_drift_story_is_reconstructed() {
        let mut data = TraceData::default();
        // Three steady sweeps at 24 intervals, one empty sweep (which must
        // not count as a move), then a cadence change to 8 intervals.
        for n in 1..=3u64 {
            data.spectral_sweeps.push(sweep(n, 32 * n, &[(24, 0.8), (168, 0.1)]));
        }
        data.spectral_sweeps.push(sweep(4, 128, &[]));
        data.spectral_sweeps.push(sweep(5, 160, &[(8, 0.7)]));
        data.spectral_sweeps.push(sweep(6, 192, &[(8, 0.75)]));
        data.alert_events.push(AlertEvent {
            alert: "spectral_shift".into(),
            metric: "spectral.period_intervals".into(),
            from: "ok".into(),
            to: "firing".into(),
            value: 8.0,
        });
        // A non-spectral transition must stay out of the spectrum report.
        data.alert_events.push(AlertEvent {
            alert: "mae_drift".into(),
            metric: "quality.mae.ewma".into(),
            from: "ok".into(),
            to: "warning".into(),
            value: 0.4,
        });
        let text = render(&data);
        assert!(text.contains("6 sweep(s), 5 with a dominant period"), "{text}");
        assert!(text.contains("<-- PERIOD SHIFT"), "{text}");
        assert!(text.contains("24 -> 8 intervals"), "{text}");
        assert!(text.contains("1 dominant-period move(s)"), "{text}");
        assert!(text.contains("<-- FIRING"), "{text}");
        assert!(text.contains("final spectral alert state: firing"), "{text}");
        assert!(!text.contains("mae_drift"), "{text}");
    }

    #[test]
    fn steady_trajectory_reports_no_moves() {
        let mut data = TraceData::default();
        for n in 1..=30u64 {
            data.spectral_sweeps.push(sweep(n, 32 * n, &[(24, 0.8)]));
        }
        let text = render(&data);
        assert!(text.contains("no dominant-period moves"), "{text}");
        assert!(text.contains("steady sweep(s) elided"), "{text}");
        assert!(text.contains("no spectral alert transitions"), "{text}");
    }
}
