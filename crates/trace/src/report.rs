//! Human-readable per-run summary of one trace.

use crate::flame;
use crate::ingest::TraceData;
use muse_obs::Json;

/// How many rows the "top kernels / top spans" sections show.
const TOP_N: usize = 8;

/// Render the full report for a loaded trace.
pub fn render(data: &TraceData) -> String {
    let mut out = String::new();
    out.push_str(&format!("trace: {} ({} events)\n", data.path.display(), data.events.len()));

    if let Some(manifest) = &data.manifest {
        out.push_str("manifest:\n");
        let experiments = manifest
            .get("experiments")
            .and_then(Json::as_arr)
            .map(|a| a.iter().filter_map(Json::as_str).collect::<Vec<_>>().join(", "))
            .unwrap_or_default();
        out.push_str(&format!("  experiments: {experiments}\n"));
        if let Some(threads) = manifest.get("threads").and_then(Json::as_f64) {
            out.push_str(&format!("  threads: {threads}\n"));
        }
        if let Some(addr) = manifest.get("metrics_addr").and_then(Json::as_str) {
            out.push_str(&format!("  metrics: http://{addr}/metrics\n"));
        }
    }

    if !data.runs.is_empty() {
        out.push_str("training runs:\n");
        out.push_str(&format!(
            "  {:>4} {:>7} {:>10} {:>10} {:>10} {:>8} {:>8} {:>12}\n",
            "run", "epochs", "first", "last", "best-rmse", "batches", "skipped", "samples/s"
        ));
        for run in &data.runs {
            out.push_str(&format!(
                "  {:>4} {:>7} {:>10} {:>10} {:>10} {:>8} {:>8} {:>12.1}\n",
                run.run,
                format_epochs(run),
                fmt_opt(run.first_loss()),
                fmt_opt(run.last_loss()),
                fmt_opt(run.best_val_rmse),
                run.batches,
                run.skipped_batches,
                run.mean_samples_per_sec(),
            ));
            if let Some(epoch) = run.early_stop_epoch {
                out.push_str(&format!("       early-stopped at epoch {epoch}\n"));
            }
            if run.skipped_batches > 0 {
                out.push_str(&format!(
                    "       DIVERGENCE: {} batch(es) skipped for non-finite loss\n",
                    run.skipped_batches
                ));
            }
        }
    }

    if !data.experiments.is_empty() {
        out.push_str("experiments:\n");
        for (name, secs) in &data.experiments {
            out.push_str(&format!("  {name:<24} {secs:>8.1} s\n"));
        }
    }

    if !data.kernels.is_empty() {
        out.push_str(&format!("top kernels by time (of {}):\n", data.kernels.len()));
        for k in data.kernels_by_time().into_iter().take(TOP_N) {
            out.push_str(&format!(
                "  {:<28} {:>10.0} calls  {:>10.3} ms  {:>10.1} ns/call\n",
                k.name,
                k.calls,
                k.nanos / 1e6,
                k.nanos_per_call(),
            ));
        }
        out.push_str("top kernels by bytes:\n");
        for k in data.kernels_by_bytes().into_iter().take(TOP_N) {
            out.push_str(&format!(
                "  {:<28} {:>10.1} MiB  {:>12.1} bytes/call\n",
                k.name,
                k.bytes / (1024.0 * 1024.0),
                k.bytes_per_call(),
            ));
        }
    }

    if !data.span_exits.is_empty() {
        let folded = flame::fold(&data.span_exits);
        out.push_str(&format!("top spans by self time (of {} paths):\n", folded.len()));
        for span in flame::by_self_time(&folded).into_iter().take(TOP_N) {
            out.push_str(&format!(
                "  {:<44} {:>8}x  self {:>10.3} ms  total {:>10.3} ms\n",
                span.path,
                span.count,
                span.self_ns as f64 / 1e6,
                span.total_ns as f64 / 1e6,
            ));
        }
    }

    if !data.benches.is_empty() {
        out.push_str("benches:\n");
        for b in &data.benches {
            out.push_str(&format!(
                "  {:<40} min {:>12.0} ns  mean {:>12.0} ns  ({} samples)\n",
                b.name, b.min_ns, b.mean_ns, b.samples
            ));
        }
    }

    let interesting: Vec<(&String, &f64)> = data
        .counters
        .iter()
        .chain(data.gauges.iter())
        .filter(|(name, _)| {
            name.starts_with("parallel.")
                || name.starts_with("obs.")
                || name.starts_with("tensor.")
                || name.starts_with("sched.")
        })
        .collect();
    if !interesting.is_empty() {
        out.push_str("pool & runtime metrics:\n");
        for (name, v) in interesting {
            out.push_str(&format!("  {name:<32} {v}\n"));
        }
    }

    if out.lines().count() <= 1 {
        out.push_str("(no recognized events — is this a muse-obs trace?)\n");
    }
    out
}

fn format_epochs(run: &crate::ingest::TrainRun) -> String {
    if run.epochs_planned > 0 && run.epochs.len() != run.epochs_planned {
        format!("{}/{}", run.epochs.len(), run.epochs_planned)
    } else {
        format!("{}", run.epochs.len())
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.4}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{EpochRow, KernelRow, SpanExit, TrainRun};

    #[test]
    fn report_mentions_runs_kernels_and_divergence() {
        let data = TraceData {
            runs: vec![TrainRun {
                run: 1,
                epochs_planned: 4,
                epochs: vec![EpochRow {
                    epoch: 0,
                    train_loss: 2.0,
                    train_regression: 1.0,
                    val_rmse: Some(0.5),
                    skipped_batches: 2,
                    batches: 3,
                    duration_ms: 10.0,
                    samples_per_sec: 100.0,
                    kl_exclusive: 0.0,
                    kl_interactive: 0.0,
                    reconstruction: 0.0,
                    pulling: 0.0,
                }],
                batches: 3,
                skipped_batches: 2,
                ..TrainRun::default()
            }],
            kernels: vec![KernelRow { name: "tensor.matmul".into(), calls: 2.0, nanos: 100.0, bytes: 64.0 }],
            span_exits: vec![SpanExit { path: "train.fit".into(), tid: 1, t_ns: 9, dur_ns: 9 }],
            ..TraceData::default()
        };
        let text = render(&data);
        assert!(text.contains("1/4"), "partial epoch count shown: {text}");
        assert!(text.contains("DIVERGENCE"), "skipped batches flagged: {text}");
        assert!(text.contains("tensor.matmul"));
        assert!(text.contains("train.fit"));
    }

    #[test]
    fn report_lists_scheduler_and_sharded_pool_metrics() {
        let data = TraceData {
            counters: [
                ("sched.jobs_completed".to_string(), 6.0),
                ("tensor.pool_hits".to_string(), 10.0),
                ("tensor.pool_hits.shard0".to_string(), 7.0),
                ("tensor.pool_hits.shard3".to_string(), 3.0),
            ]
            .into(),
            gauges: [("sched.queue_depth".to_string(), 0.0)].into(),
            ..TraceData::default()
        };
        let text = render(&data);
        assert!(text.contains("sched.jobs_completed"), "scheduler counters shown: {text}");
        assert!(text.contains("sched.queue_depth"), "scheduler gauges shown: {text}");
        assert!(text.contains("tensor.pool_hits.shard3"), "per-shard rows shown: {text}");
    }

    #[test]
    fn empty_trace_says_so() {
        let text = render(&TraceData::default());
        assert!(text.contains("no recognized events"));
    }
}
