//! `muse-trace quality` — reconstruct the serve-path quality story from a
//! trace: the forecast error trajectory, the alert transition chronology,
//! and per-request lifecycles (ingest → coalesce → rollout → score),
//! correlated by the request ids the daemon threads through its events.

use crate::ingest::{QualitySample, TraceData};
use std::collections::BTreeMap;

/// How many trajectory buckets the error timeline is folded into.
const TRAJECTORY_BUCKETS: usize = 8;

/// How many request lifecycles are printed in full.
const LIFECYCLE_ROWS: usize = 10;

/// Render the quality report for a loaded trace.
pub fn render(data: &TraceData) -> String {
    let mut out = String::new();
    out.push_str(&format!("trace: {} ({} events)\n", data.path.display(), data.events.len()));

    if data.quality_samples.is_empty()
        && data.dropped_forecasts.is_empty()
        && data.alert_events.is_empty()
        && data.request_events.is_empty()
    {
        out.push_str(
            "(no serve-path quality events — run muse-serve with --trace and \
             stream ground truth through /ingest)\n",
        );
        return out;
    }

    let scored = data.quality_samples.len();
    let dropped = data.dropped_forecasts.len();
    let rejects = data.request_events.iter().filter(|r| r.kind == "reject").count();
    out.push_str(&format!(
        "quality: {scored} scored, {dropped} dropped, {rejects} rejected, {} alert transition(s)\n",
        data.alert_events.len()
    ));

    render_trajectory(&mut out, data);
    render_drops(&mut out, data);
    render_alerts(&mut out, data);
    render_lifecycles(&mut out, data);
    out
}

/// Error trajectory: per horizon, fold the scored samples (in trace order)
/// into a handful of buckets of mean MAE/RMSE so a drift reads as a rising
/// tail without printing every sample.
fn render_trajectory(out: &mut String, data: &TraceData) {
    if data.quality_samples.is_empty() {
        return;
    }
    let mut by_horizon: BTreeMap<usize, Vec<&QualitySample>> = BTreeMap::new();
    for s in &data.quality_samples {
        by_horizon.entry(s.horizon).or_default().push(s);
    }
    out.push_str("error trajectory (bucketed mean MAE over sample order):\n");
    for (horizon, samples) in &by_horizon {
        let mae: Vec<f64> = samples.iter().map(|s| s.mae).collect();
        let rmse: Vec<f64> = samples.iter().map(|s| s.rmse).collect();
        let mean = mae.iter().sum::<f64>() / mae.len() as f64;
        let worst = mae.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        out.push_str(&format!(
            "  h={horizon}: {} sample(s), mean mae {:.4}, mean rmse {:.4}, worst mae {:.4}\n",
            samples.len(),
            mean,
            rmse.iter().sum::<f64>() / rmse.len() as f64,
            worst,
        ));
        let buckets = bucket_means(&mae, TRAJECTORY_BUCKETS);
        if buckets.len() > 1 {
            let rendered: Vec<String> = buckets.iter().map(|b| format!("{b:.4}")).collect();
            out.push_str(&format!("       mae: {}\n", rendered.join(" -> ")));
            let first = buckets[0].max(f64::MIN_POSITIVE);
            let last = buckets[buckets.len() - 1];
            if last > 3.0 * first {
                out.push_str(&format!("       DRIFT: final bucket is {:.1}x the first\n", last / first));
            }
        }
    }
}

fn render_drops(out: &mut String, data: &TraceData) {
    if data.dropped_forecasts.is_empty() {
        return;
    }
    let mut by_reason: BTreeMap<&str, usize> = BTreeMap::new();
    for d in &data.dropped_forecasts {
        *by_reason.entry(d.reason.as_str()).or_default() += 1;
    }
    out.push_str("dropped forecasts:\n");
    for (reason, n) in by_reason {
        out.push_str(&format!("  {reason:<20} {n}\n"));
    }
}

/// Alert chronology: every state transition, in trace order, ending with
/// each alert's final state.
fn render_alerts(out: &mut String, data: &TraceData) {
    if data.alert_events.is_empty() {
        return;
    }
    out.push_str("alert transitions:\n");
    let mut finals: BTreeMap<&str, &str> = BTreeMap::new();
    for a in &data.alert_events {
        out.push_str(&format!(
            "  {:<24} {:>8} -> {:<8} ({} = {:.4})\n",
            a.alert, a.from, a.to, a.metric, a.value
        ));
        finals.insert(&a.alert, &a.to);
    }
    out.push_str("final alert states:\n");
    for (alert, state) in finals {
        let marker = if state == "firing" { "  <-- FIRING" } else { "" };
        out.push_str(&format!("  {alert:<24} {state}{marker}\n"));
    }
}

/// Request lifecycles: join req.forecast rows with their coalesce batch and
/// eventual score/drop by request id.
fn render_lifecycles(out: &mut String, data: &TraceData) {
    let forecasts: Vec<_> = data.request_events.iter().filter(|r| r.kind == "forecast").collect();
    if forecasts.is_empty() {
        return;
    }
    let mut batch_of: BTreeMap<u64, usize> = BTreeMap::new();
    for c in &data.coalesces {
        for &req in &c.requests {
            batch_of.insert(req, c.batch_size);
        }
    }
    let scored_mae: BTreeMap<u64, f64> = data.quality_samples.iter().map(|s| (s.request, s.mae)).collect();
    let drop_reason: BTreeMap<u64, &str> =
        data.dropped_forecasts.iter().map(|d| (d.request, d.reason.as_str())).collect();

    out.push_str(&format!(
        "forecast lifecycles ({} of {}):\n",
        forecasts.len().min(LIFECYCLE_ROWS),
        forecasts.len()
    ));
    out.push_str(&format!(
        "  {:>8} {:>8} {:>6} {:>8} {:>6} {:>10}\n",
        "request", "rollout", "h", "target", "batch", "outcome"
    ));
    for f in forecasts.iter().take(LIFECYCLE_ROWS) {
        let outcome = match (scored_mae.get(&f.request), drop_reason.get(&f.request)) {
            (Some(mae), _) => format!("mae {mae:.4}"),
            (None, Some(reason)) => (*reason).to_string(),
            (None, None) => "pending".to_string(),
        };
        out.push_str(&format!(
            "  {:>8} {:>8} {:>6} {:>8} {:>6} {:>10}\n",
            f.request,
            f.rollout.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
            f.horizon.map(|h| h.to_string()).unwrap_or_else(|| "-".into()),
            f.target.map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
            batch_of.get(&f.request).map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
            outcome,
        ));
    }

    let mut reject_counts: BTreeMap<String, usize> = BTreeMap::new();
    for r in data.request_events.iter().filter(|r| r.kind == "reject") {
        let key = format!("{}/{}", r.stage.as_deref().unwrap_or("?"), r.reason.as_deref().unwrap_or("?"));
        *reject_counts.entry(key).or_default() += 1;
    }
    if !reject_counts.is_empty() {
        out.push_str("rejected requests (stage/reason):\n");
        for (key, n) in reject_counts {
            out.push_str(&format!("  {key:<32} {n}\n"));
        }
    }
}

/// Fold `values` into up to `n` contiguous buckets of their means.
fn bucket_means(values: &[f64], n: usize) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let buckets = n.min(values.len());
    (0..buckets)
        .map(|b| {
            let lo = b * values.len() / buckets;
            let hi = ((b + 1) * values.len() / buckets).max(lo + 1);
            let chunk = &values[lo..hi];
            chunk.iter().sum::<f64>() / chunk.len() as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{AlertEvent, CoalesceEvent, DroppedForecast, QualitySample, RequestEvent};

    fn sample(request: u64, horizon: usize, mae: f64) -> QualitySample {
        QualitySample {
            request,
            rollout: 1,
            horizon,
            target: 20 + request,
            mae,
            rmse: mae * 1.2,
            mae_inflow: mae,
            mae_outflow: mae,
        }
    }

    fn forecast_event(request: u64) -> RequestEvent {
        RequestEvent {
            kind: "forecast".into(),
            request,
            index: None,
            rollout: Some(1),
            horizon: Some(1),
            target: Some(20 + request),
            stage: None,
            reason: None,
        }
    }

    #[test]
    fn empty_trace_points_at_the_daemon_flags() {
        let text = render(&TraceData::default());
        assert!(text.contains("no serve-path quality events"), "{text}");
    }

    #[test]
    fn drift_story_is_reconstructed() {
        let mut data = TraceData::default();
        // 8 clean samples then 8 blown-up ones: the trajectory must flag it.
        for i in 0..16u64 {
            let mae = if i < 8 { 0.05 } else { 0.9 };
            data.quality_samples.push(sample(i + 1, 1, mae));
            data.request_events.push(forecast_event(i + 1));
        }
        data.coalesces.push(CoalesceEvent { rollout: 1, batch_size: 1, requests: vec![1] });
        data.dropped_forecasts.push(DroppedForecast {
            request: 99,
            horizon: 1,
            target: 120,
            reason: "target_evicted".into(),
        });
        data.alert_events.push(AlertEvent {
            alert: "flow_level_shift".into(),
            metric: "serve.flow.mean".into(),
            from: "ok".into(),
            to: "firing".into(),
            value: 1.5,
        });
        data.request_events.push(RequestEvent {
            kind: "reject".into(),
            request: 100,
            index: None,
            rollout: None,
            horizon: None,
            target: None,
            stage: Some("forecast".into()),
            reason: Some("bad_horizon".into()),
        });
        let text = render(&data);
        assert!(text.contains("16 scored"), "{text}");
        assert!(text.contains("DRIFT"), "rising trajectory flagged: {text}");
        assert!(text.contains("flow_level_shift"), "{text}");
        assert!(text.contains("<-- FIRING"), "{text}");
        assert!(text.contains("target_evicted"), "{text}");
        assert!(text.contains("mae 0.0500"), "lifecycle outcome joined: {text}");
        assert!(text.contains("forecast/bad_horizon"), "{text}");
    }

    #[test]
    fn bucket_means_folds_evenly() {
        assert_eq!(bucket_means(&[1.0, 1.0, 3.0, 3.0], 2), vec![1.0, 3.0]);
        assert_eq!(bucket_means(&[2.0], 8), vec![2.0]);
        assert!(bucket_means(&[], 8).is_empty());
    }
}
