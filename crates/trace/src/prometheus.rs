//! A small parser/validator for Prometheus text exposition format 0.0.4.
//!
//! Used by the `promcheck` subcommand (CI curls `/metrics` and pipes the
//! body here) and by tests that assert the exporter's output is
//! well-formed without any network dependency.

use std::collections::BTreeMap;

/// Raw time-unit suffixes that must never appear on an exported family —
/// Prometheus metrics use base units, so durations are `_seconds`.
const FORBIDDEN_UNIT_SUFFIXES: [&str; 6] = ["_ns", "_nanos", "_us", "_micros", "_ms", "_millis"];

/// One sample line: `name{label="v",...} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Labels in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf`/`-Inf`/`NaN` accepted per the format).
    pub value: f64,
}

/// A parsed exposition: samples plus `# TYPE` declarations.
#[derive(Debug, Default)]
pub struct Exposition {
    /// All samples, in order.
    pub samples: Vec<Sample>,
    /// `# TYPE <name> <kind>` declarations.
    pub types: BTreeMap<String, String>,
}

impl Exposition {
    /// Samples with exactly this metric name.
    pub fn with_name(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// Validate structural invariants beyond line-level syntax:
    ///
    /// * every sample's name (modulo histogram suffixes) has a `# TYPE`;
    /// * counters are non-negative and end in `_total`;
    /// * histograms have `_sum`/`_count` and a `+Inf` bucket whose
    ///   cumulative count equals `_count`;
    /// * bucket counts are monotonically non-decreasing in `le` order;
    /// * no family carries a raw time-unit suffix (`_ns`, `_ms`, …) —
    ///   Prometheus convention is base units, so durations export as
    ///   `_seconds`;
    /// * `_info` families follow the info-gauge pattern: TYPE gauge with
    ///   every sample's value exactly 1 (the payload lives in labels).
    pub fn validate(&self) -> Result<(), String> {
        if self.samples.is_empty() {
            return Err("exposition contains no samples".to_string());
        }
        for s in &self.samples {
            let family = family_name(&s.name);
            if !self.types.contains_key(&family) {
                return Err(format!("sample `{}` has no # TYPE declaration", s.name));
            }
        }
        for family in self.types.keys() {
            let stem = family.strip_suffix("_total").unwrap_or(family);
            for suffix in FORBIDDEN_UNIT_SUFFIXES {
                if stem.ends_with(suffix) {
                    return Err(format!(
                        "metric `{family}` uses the non-base unit suffix `{suffix}`; \
                         export durations in seconds (`_seconds`)"
                    ));
                }
            }
        }
        for (family, kind) in &self.types {
            match kind.as_str() {
                "counter" => {
                    if !family.ends_with("_total") {
                        return Err(format!("counter `{family}` does not end in _total"));
                    }
                    for s in self.with_name(family) {
                        if s.value < 0.0 {
                            return Err(format!("counter `{family}` has negative sample {}", s.value));
                        }
                    }
                }
                "histogram" => self.validate_histogram(family)?,
                "gauge" => {}
                other => return Err(format!("unknown metric type `{other}` for `{family}`")),
            }
            // Apply to the `_total`-stripped stem too, so a counter named
            // `*_info_total` cannot smuggle the pattern past the check.
            if family.strip_suffix("_total").unwrap_or(family).ends_with("_info") {
                if kind != "gauge" {
                    return Err(format!("info metric `{family}` must be a gauge, found {kind}"));
                }
                for s in self.with_name(family) {
                    if s.value != 1.0 {
                        return Err(format!("info metric `{family}` must have value 1, found {}", s.value));
                    }
                }
            }
        }
        Ok(())
    }

    fn validate_histogram(&self, family: &str) -> Result<(), String> {
        let count = single_value(self, &format!("{family}_count"))?;
        single_value(self, &format!("{family}_sum"))?;
        let buckets = self.with_name(&format!("{family}_bucket"));
        let mut last = f64::NEG_INFINITY;
        let mut saw_inf = false;
        for b in &buckets {
            let le = b
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("histogram `{family}` bucket without le label"))?;
            if b.value < last {
                return Err(format!("histogram `{family}` buckets not cumulative at le={le}"));
            }
            last = b.value;
            if le == "+Inf" {
                saw_inf = true;
                if (b.value - count).abs() > 0.0 {
                    return Err(format!("histogram `{family}` +Inf bucket {} != _count {count}", b.value));
                }
            }
        }
        if !saw_inf {
            return Err(format!("histogram `{family}` missing +Inf bucket"));
        }
        Ok(())
    }
}

fn single_value(exp: &Exposition, name: &str) -> Result<f64, String> {
    match exp.with_name(name).as_slice() {
        [one] => Ok(one.value),
        [] => Err(format!("missing sample `{name}`")),
        _ => Err(format!("duplicate sample `{name}`")),
    }
}

/// Map histogram component names back to their declared family.
fn family_name(sample_name: &str) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = sample_name.strip_suffix(suffix) {
            return stem.to_string();
        }
    }
    sample_name.to_string()
}

/// Parse exposition text into samples + types. Fails on any malformed
/// line with its 1-based line number.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut exp = Exposition::default();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or(format!("line {lineno}: TYPE without name"))?;
            let kind = parts.next().ok_or(format!("line {lineno}: TYPE without kind"))?;
            exp.types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        exp.samples.push(parse_sample(line).map_err(|e| format!("line {lineno}: {e}"))?);
    }
    Ok(exp)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_and_labels, value) = match line.rfind(' ') {
        Some(i) => (&line[..i], &line[i + 1..]),
        None => return Err(format!("no value in `{line}`")),
    };
    let value = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse::<f64>().map_err(|_| format!("bad value `{v}`"))?,
    };
    let (name, labels) = match name_and_labels.find('{') {
        None => (name_and_labels.to_string(), Vec::new()),
        Some(open) => {
            let name = name_and_labels[..open].to_string();
            let rest = name_and_labels[open + 1..]
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated labels in `{line}`"))?;
            (name, parse_labels(rest)?)
        }
    };
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        return Err(format!("bad metric name `{name}`"));
    }
    Ok(Sample { name, labels, value })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        // Key.
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            return Err(format!("expected key=\"value\" in `{body}`"));
        }
        // Quoted value with \\ \" \n escapes.
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in `{body}`")),
                },
                Some(c) => value.push(c),
                None => return Err(format!("unterminated label value in `{body}`")),
            }
        }
        labels.push((key.trim().to_string(), value));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(c) => return Err(format!("unexpected `{c}` after label in `{body}`")),
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_validates_real_exporter_output() {
        // Exercise the actual renderer → parser round trip.
        let _g = muse_obs::test_lock();
        muse_obs::reset_metrics();
        muse_obs::counter("promtest.ticks").add(3);
        muse_obs::gauge("promtest.depth").set(1.5);
        let h = muse_obs::histogram("promtest.lat");
        h.record(3.0);
        h.record(100.0);
        muse_obs::kernel("promtest.kernel").calls.add(1);
        let text = muse_obs::render_prometheus();
        let exp = parse(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        exp.validate().unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert_eq!(exp.with_name("muse_promtest_ticks_total")[0].value, 3.0);
        assert_eq!(exp.with_name("muse_promtest_depth")[0].value, 1.5);
        let kernel_calls = exp.with_name("muse_kernel_calls_total");
        assert!(kernel_calls
            .iter()
            .any(|s| s.labels.iter().any(|(k, v)| k == "kernel" && v == "promtest.kernel")));
        muse_obs::reset_metrics();
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("no_value_here\n").is_err());
        assert!(parse("bad name with spaces 1\n").is_err());
        assert!(parse("x{unterminated=\"v 1\n").is_err());
    }

    #[test]
    fn validate_catches_structural_lies() {
        // Sample without TYPE.
        let exp = parse("orphan 1\n").unwrap();
        assert!(exp.validate().is_err());
        // Counter not ending in _total.
        let exp = parse("# TYPE c counter\nc 1\n").unwrap();
        assert!(exp.validate().is_err());
        // Histogram whose +Inf bucket disagrees with _count.
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 5\nh_count 2\n";
        let exp = parse(text).unwrap();
        assert!(exp.validate().unwrap_err().contains("+Inf"));
        // Non-cumulative buckets.
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n";
        let exp = parse(text).unwrap();
        assert!(exp.validate().unwrap_err().contains("cumulative"));
    }

    #[test]
    fn validate_rejects_raw_time_unit_suffixes() {
        // A gauge exported in nanoseconds.
        let exp = parse("# TYPE lat_ns gauge\nlat_ns 12\n").unwrap();
        assert!(exp.validate().unwrap_err().contains("_ns"));
        // A counter in milliseconds — the `_total` must be stripped first.
        let exp = parse("# TYPE busy_ms_total counter\nbusy_ms_total 3\n").unwrap();
        assert!(exp.validate().unwrap_err().contains("_ms"));
        // `_seconds` and unrelated names stay valid.
        let exp = parse("# TYPE lat_seconds gauge\nlat_seconds 0.5\n").unwrap();
        exp.validate().unwrap();
        let exp = parse("# TYPE queue_status gauge\nqueue_status 1\n").unwrap();
        exp.validate().unwrap();
    }

    #[test]
    fn validate_enforces_info_gauge_pattern() {
        // The well-formed pattern: gauge, constant 1, payload in labels.
        let exp = parse(
            "# TYPE muse_build_info gauge\n\
             muse_build_info{version=\"0.1.0\",simd_level=\"avx2\",threads=\"8\"} 1\n",
        )
        .unwrap();
        exp.validate().unwrap();
        // An info gauge with a value other than 1 is lying.
        let exp = parse("# TYPE muse_build_info gauge\nmuse_build_info{v=\"1\"} 7\n").unwrap();
        assert!(exp.validate().unwrap_err().contains("value 1"));
        // `_info` under any non-gauge type violates the pattern.
        let exp = parse("# TYPE build_info_total counter\nbuild_info_total 1\n").unwrap();
        assert!(exp.validate().is_err());
    }

    #[test]
    fn labels_with_escapes_round_trip() {
        let exp = parse("# TYPE m_total counter\nm_total{k=\"a\\\"b\\\\c\"} 2\n").unwrap();
        assert_eq!(exp.samples[0].labels[0].1, "a\"b\\c");
        exp.validate().unwrap();
    }
}
