//! Parse a muse-obs JSONL trace into typed run records.
//!
//! [`TraceData::load`] reads every event (tolerating a truncated final
//! line via [`muse_obs::read_trace`]) and folds the stream into:
//!
//! * training runs keyed by their `run` id — options from `train.start`,
//!   one [`EpochRow`] per `train.epoch`, divergence/early-stop markers,
//!   totals from `train.end`;
//! * per-bench results (`bench.result`) and the final `kernel.summary`
//!   (kernel totals plus counter/gauge snapshots);
//! * span exit events for flame folding;
//! * serve-path quality events: scored/dropped forecasts, alert
//!   transitions, request lifecycles, and rollout coalescing (the input
//!   to `muse-trace quality`).
//!
//! Unknown events are kept in [`TraceData::events`] but otherwise ignored,
//! so traces from newer writers stay loadable.

use muse_obs::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One `train.epoch` event, flattened.
#[derive(Debug, Clone)]
pub struct EpochRow {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean total loss over the epoch's finite batches.
    pub train_loss: f64,
    /// Mean regression component.
    pub train_regression: f64,
    /// Validation RMSE, when a validation set was given.
    pub val_rmse: Option<f64>,
    /// Diverged batches skipped this epoch.
    pub skipped_batches: usize,
    /// Batches that contributed to the means.
    pub batches: usize,
    /// Wall-clock of the epoch in milliseconds.
    pub duration_ms: f64,
    /// Training throughput.
    pub samples_per_sec: f64,
    /// Mean exclusive-KL term.
    pub kl_exclusive: f64,
    /// Mean interactive-KL term.
    pub kl_interactive: f64,
    /// Mean reconstruction (semantic-pushing) term.
    pub reconstruction: f64,
    /// Mean semantic-pulling term.
    pub pulling: f64,
}

/// One training run (`train.start` .. `train.end`), keyed by run id.
#[derive(Debug, Clone, Default)]
pub struct TrainRun {
    /// The `run` id tagging this run's events.
    pub run: u64,
    /// Planned epochs from the options.
    pub epochs_planned: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Training-set size.
    pub train_size: usize,
    /// Validation-set size.
    pub val_size: usize,
    /// One row per completed epoch.
    pub epochs: Vec<EpochRow>,
    /// Total `train.batch` events seen.
    pub batches: usize,
    /// Total diverged batches skipped.
    pub skipped_batches: usize,
    /// Epoch at which early stopping fired, if it did.
    pub early_stop_epoch: Option<usize>,
    /// Best validation RMSE, from `train.end`.
    pub best_val_rmse: Option<f64>,
    /// Whole-fit wall clock, from `train.end`.
    pub duration_ms: Option<f64>,
}

impl TrainRun {
    /// Mean training loss of the first epoch.
    pub fn first_loss(&self) -> Option<f64> {
        self.epochs.first().map(|e| e.train_loss)
    }

    /// Mean training loss of the last epoch.
    pub fn last_loss(&self) -> Option<f64> {
        self.epochs.last().map(|e| e.train_loss)
    }

    /// Mean throughput over all epochs (samples per second).
    pub fn mean_samples_per_sec(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().map(|e| e.samples_per_sec).sum::<f64>() / self.epochs.len() as f64
    }
}

/// One `bench.result` event.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Minimum per-iteration nanoseconds (the gated statistic).
    pub min_ns: f64,
    /// Mean per-iteration nanoseconds.
    pub mean_ns: f64,
    /// Maximum per-iteration nanoseconds.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

/// One kernel row from the final `kernel.summary` event.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel name.
    pub name: String,
    /// Total invocations.
    pub calls: f64,
    /// Cumulative wall-clock nanoseconds.
    pub nanos: f64,
    /// Cumulative bytes moved.
    pub bytes: f64,
}

impl KernelRow {
    /// Nanoseconds per call (0 when never called).
    pub fn nanos_per_call(&self) -> f64 {
        if self.calls > 0.0 {
            self.nanos / self.calls
        } else {
            0.0
        }
    }

    /// Bytes per call (0 when never called).
    pub fn bytes_per_call(&self) -> f64 {
        if self.calls > 0.0 {
            self.bytes / self.calls
        } else {
            0.0
        }
    }
}

/// One `forecast.scored` event: a served forecast matched against the
/// ground-truth frame that later arrived for its target index.
#[derive(Debug, Clone)]
pub struct QualitySample {
    /// Request id of the forecast that was scored.
    pub request: u64,
    /// Rollout batch the forecast was computed in.
    pub rollout: u64,
    /// Forecast horizon in frames.
    pub horizon: usize,
    /// Absolute target frame index.
    pub target: u64,
    /// Mean absolute error over the frame.
    pub mae: f64,
    /// Root-mean-square error over the frame.
    pub rmse: f64,
    /// MAE over the inflow half of the frame.
    pub mae_inflow: f64,
    /// MAE over the outflow half of the frame.
    pub mae_outflow: f64,
}

/// One `forecast.dropped` event: a journaled forecast that could not be
/// scored (its target frame was evicted, or the journal overflowed).
#[derive(Debug, Clone)]
pub struct DroppedForecast {
    /// Request id of the dropped forecast.
    pub request: u64,
    /// Forecast horizon in frames.
    pub horizon: usize,
    /// Absolute target frame index it was waiting for.
    pub target: u64,
    /// Why it was dropped (`journal_overflow` / `target_evicted`).
    pub reason: String,
}

/// One `alert.transition` event: an alert rule changed state.
#[derive(Debug, Clone)]
pub struct AlertEvent {
    /// Alert rule name.
    pub alert: String,
    /// The metric the rule watches.
    pub metric: String,
    /// State before the transition (`ok`/`warning`/`firing`).
    pub from: String,
    /// State after the transition.
    pub to: String,
    /// The metric value that caused the transition.
    pub value: f64,
}

/// One request-lifecycle event (`req.ingest` / `req.forecast` /
/// `req.reject`), flattened into a single row keyed by request id.
#[derive(Debug, Clone)]
pub struct RequestEvent {
    /// Which lifecycle stage this row records (`ingest`/`forecast`/`reject`).
    pub kind: String,
    /// Request id.
    pub request: u64,
    /// Absolute frame index (ingests only).
    pub index: Option<u64>,
    /// Rollout batch id (forecasts only).
    pub rollout: Option<u64>,
    /// Forecast horizon (forecasts only).
    pub horizon: Option<usize>,
    /// Absolute target frame index (forecasts only).
    pub target: Option<u64>,
    /// Pipeline stage that rejected the request (rejects only).
    pub stage: Option<String>,
    /// Rejection reason (rejects only).
    pub reason: Option<String>,
}

/// One `req.coalesce` event: the engine batching several pending forecast
/// requests into a single model rollout.
#[derive(Debug, Clone)]
pub struct CoalesceEvent {
    /// Rollout batch id assigned to the coalesced work.
    pub rollout: u64,
    /// How many requests were folded into the rollout.
    pub batch_size: usize,
    /// The request ids, in service order.
    pub requests: Vec<u64>,
}

/// One detected period inside a `spectral.sweep` event.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPeriod {
    /// Period length in intervals (frames).
    pub intervals: usize,
    /// Share of total spectral power near this period.
    pub power_share: f64,
    /// Peak power over the median noise floor.
    pub snr: f64,
}

/// One `spectral.sweep` event: the daemon re-detected the dominant
/// periodicities of its live flow window.
#[derive(Debug, Clone)]
pub struct SpectralSweep {
    /// Monotonic sweep ordinal.
    pub sweep: u64,
    /// Absolute frame index the sweep observed.
    pub index: u64,
    /// Detected periods, strongest first (empty: nothing passed the gates).
    pub periods: Vec<SweepPeriod>,
}

impl SpectralSweep {
    /// The dominant (strongest) detected period, if any.
    pub fn dominant(&self) -> Option<&SweepPeriod> {
        self.periods.first()
    }
}

/// One `span.exit` event.
#[derive(Debug, Clone)]
pub struct SpanExit {
    /// Slash-joined span path (e.g. `train.fit/train.forward/model.encode`).
    pub path: String,
    /// Per-thread ordinal the span ran on.
    pub tid: u64,
    /// Exit timestamp, trace-relative monotonic nanoseconds.
    pub t_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// A fully parsed trace.
#[derive(Debug, Default)]
pub struct TraceData {
    /// Where the trace was read from.
    pub path: PathBuf,
    /// Every event, in order (including kinds this parser ignores).
    pub events: Vec<Json>,
    /// The `run.manifest` event, if present.
    pub manifest: Option<Json>,
    /// Training runs in first-seen order.
    pub runs: Vec<TrainRun>,
    /// `(experiment, duration_s)` per `eval.experiment` event.
    pub experiments: Vec<(String, f64)>,
    /// `bench.result` events in order.
    pub benches: Vec<BenchResult>,
    /// Kernel totals from the *final* `kernel.summary` (earlier summaries
    /// are superseded — only the last covers the whole run).
    pub kernels: Vec<KernelRow>,
    /// Counter snapshot from the final `kernel.summary`.
    pub counters: BTreeMap<String, f64>,
    /// Gauge snapshot from the final `kernel.summary`.
    pub gauges: BTreeMap<String, f64>,
    /// `span.exit` events in order (the input to flame folding).
    pub span_exits: Vec<SpanExit>,
    /// `forecast.scored` events in order (the serve-path error trajectory).
    pub quality_samples: Vec<QualitySample>,
    /// `forecast.dropped` events in order.
    pub dropped_forecasts: Vec<DroppedForecast>,
    /// `alert.transition` events in order (the alert chronology).
    pub alert_events: Vec<AlertEvent>,
    /// Request lifecycle events (`req.ingest`/`req.forecast`/`req.reject`).
    pub request_events: Vec<RequestEvent>,
    /// `req.coalesce` events in order.
    pub coalesces: Vec<CoalesceEvent>,
    /// `spectral.sweep` events in order (the period-drift trajectory).
    pub spectral_sweeps: Vec<SpectralSweep>,
}

fn num(ev: &Json, key: &str) -> f64 {
    ev.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn unum(ev: &Json, key: &str) -> u64 {
    num(ev, key).max(0.0) as u64
}

impl TraceData {
    /// Read and fold a JSONL trace. Errors only on I/O failure or
    /// corruption before the final line; a truncated final line (killed
    /// run) is skipped by the reader.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<TraceData> {
        let path = path.as_ref().to_path_buf();
        let events = muse_obs::read_trace(&path)?;
        let mut data = TraceData { path, ..TraceData::default() };
        // Run-id → index into data.runs, preserving first-seen order.
        let mut run_index: BTreeMap<u64, usize> = BTreeMap::new();
        for ev in &events {
            let Some(kind) = ev.get("ev").and_then(Json::as_str) else { continue };
            match kind {
                "run.manifest" => data.manifest = Some(ev.clone()),
                "train.start" => {
                    let run = unum(ev, "run");
                    let idx = *run_index.entry(run).or_insert_with(|| {
                        data.runs.push(TrainRun { run, ..TrainRun::default() });
                        data.runs.len() - 1
                    });
                    let r = &mut data.runs[idx];
                    r.epochs_planned = unum(ev, "epochs") as usize;
                    r.batch_size = unum(ev, "batch_size") as usize;
                    r.learning_rate = num(ev, "learning_rate");
                    r.train_size = unum(ev, "train_size") as usize;
                    r.val_size = unum(ev, "val_size") as usize;
                }
                "train.batch" | "train.batch_skipped" | "train.epoch" | "train.early_stop" | "train.end" => {
                    let run = unum(ev, "run");
                    let idx = *run_index.entry(run).or_insert_with(|| {
                        data.runs.push(TrainRun { run, ..TrainRun::default() });
                        data.runs.len() - 1
                    });
                    let r = &mut data.runs[idx];
                    match kind {
                        "train.batch" => r.batches += 1,
                        "train.batch_skipped" => r.skipped_batches += 1,
                        "train.epoch" => {
                            let record = ev.get("record").cloned().unwrap_or(Json::Null);
                            r.epochs.push(EpochRow {
                                epoch: unum(&record, "epoch") as usize,
                                train_loss: num(&record, "train_loss"),
                                train_regression: num(&record, "train_regression"),
                                val_rmse: record.get("val_rmse").and_then(Json::as_f64),
                                skipped_batches: unum(&record, "skipped_batches") as usize,
                                batches: unum(ev, "batches") as usize,
                                duration_ms: num(ev, "duration_ms"),
                                samples_per_sec: num(ev, "samples_per_sec"),
                                kl_exclusive: num(ev, "kl_exclusive"),
                                kl_interactive: num(ev, "kl_interactive"),
                                reconstruction: num(ev, "reconstruction"),
                                pulling: num(ev, "pulling"),
                            });
                        }
                        "train.early_stop" => r.early_stop_epoch = Some(unum(ev, "epoch") as usize),
                        _ => {
                            // train.end
                            r.best_val_rmse = ev.get("best_val_rmse").and_then(Json::as_f64);
                            r.duration_ms = ev.get("duration_ms").and_then(Json::as_f64);
                        }
                    }
                }
                "eval.experiment" => {
                    let name = ev.get("experiment").and_then(Json::as_str).unwrap_or("?").to_string();
                    data.experiments.push((name, num(ev, "duration_s")));
                }
                "bench.result" => {
                    data.benches.push(BenchResult {
                        name: ev.get("name").and_then(Json::as_str).unwrap_or("?").to_string(),
                        min_ns: num(ev, "min_ns"),
                        mean_ns: num(ev, "mean_ns"),
                        max_ns: num(ev, "max_ns"),
                        samples: unum(ev, "samples") as usize,
                    });
                }
                "kernel.summary" => {
                    data.kernels.clear();
                    data.counters.clear();
                    data.gauges.clear();
                    let Some(metrics) = ev.get("metrics") else { continue };
                    if let Some(Json::Obj(ks)) = metrics.get("kernels") {
                        for (name, stat) in ks {
                            data.kernels.push(KernelRow {
                                name: name.clone(),
                                calls: num(stat, "calls"),
                                nanos: num(stat, "nanos"),
                                bytes: num(stat, "bytes"),
                            });
                        }
                    }
                    if let Some(Json::Obj(cs)) = metrics.get("counters") {
                        for (name, v) in cs {
                            if let Some(v) = v.as_f64() {
                                data.counters.insert(name.clone(), v);
                            }
                        }
                    }
                    if let Some(Json::Obj(gs)) = metrics.get("gauges") {
                        for (name, v) in gs {
                            if let Some(v) = v.as_f64() {
                                data.gauges.insert(name.clone(), v);
                            }
                        }
                    }
                }
                "span.exit" => {
                    data.span_exits.push(SpanExit {
                        path: ev.get("path").and_then(Json::as_str).unwrap_or("?").to_string(),
                        tid: unum(ev, "tid"),
                        t_ns: unum(ev, "t_ns"),
                        dur_ns: unum(ev, "dur_ns"),
                    });
                }
                "forecast.scored" => {
                    data.quality_samples.push(QualitySample {
                        request: unum(ev, "request"),
                        rollout: unum(ev, "rollout"),
                        horizon: unum(ev, "horizon") as usize,
                        target: unum(ev, "target"),
                        mae: num(ev, "mae"),
                        rmse: num(ev, "rmse"),
                        mae_inflow: num(ev, "mae_inflow"),
                        mae_outflow: num(ev, "mae_outflow"),
                    });
                }
                "forecast.dropped" => {
                    data.dropped_forecasts.push(DroppedForecast {
                        request: unum(ev, "request"),
                        horizon: unum(ev, "horizon") as usize,
                        target: unum(ev, "target"),
                        reason: ev.get("reason").and_then(Json::as_str).unwrap_or("?").to_string(),
                    });
                }
                "alert.transition" => {
                    data.alert_events.push(AlertEvent {
                        alert: ev.get("alert").and_then(Json::as_str).unwrap_or("?").to_string(),
                        metric: ev.get("metric").and_then(Json::as_str).unwrap_or("?").to_string(),
                        from: ev.get("from").and_then(Json::as_str).unwrap_or("?").to_string(),
                        to: ev.get("to").and_then(Json::as_str).unwrap_or("?").to_string(),
                        value: num(ev, "value"),
                    });
                }
                "req.ingest" | "req.forecast" | "req.reject" => {
                    let opt_u = |key: &str| ev.get(key).and_then(Json::as_f64).map(|v| v.max(0.0) as u64);
                    let opt_s = |key: &str| ev.get(key).and_then(Json::as_str).map(|s| s.to_string());
                    data.request_events.push(RequestEvent {
                        kind: kind.trim_start_matches("req.").to_string(),
                        request: unum(ev, "request"),
                        index: opt_u("index"),
                        rollout: opt_u("rollout"),
                        horizon: opt_u("horizon").map(|h| h as usize),
                        target: opt_u("target"),
                        stage: opt_s("stage"),
                        reason: opt_s("reason"),
                    });
                }
                "spectral.sweep" => {
                    let periods = ev
                        .get("periods")
                        .and_then(Json::as_arr)
                        .map(|ps| {
                            ps.iter()
                                .map(|p| SweepPeriod {
                                    intervals: unum(p, "intervals") as usize,
                                    power_share: num(p, "power_share"),
                                    snr: num(p, "snr"),
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    data.spectral_sweeps.push(SpectralSweep {
                        sweep: unum(ev, "sweep"),
                        index: unum(ev, "index"),
                        periods,
                    });
                }
                "req.coalesce" => {
                    let requests = ev
                        .get("requests")
                        .and_then(Json::as_arr)
                        .map(|rs| rs.iter().filter_map(Json::as_f64).map(|v| v.max(0.0) as u64).collect())
                        .unwrap_or_default();
                    data.coalesces.push(CoalesceEvent {
                        rollout: unum(ev, "rollout"),
                        batch_size: unum(ev, "batch_size") as usize,
                        requests,
                    });
                }
                _ => {}
            }
        }
        data.events = events;
        Ok(data)
    }

    /// Kernels sorted by cumulative time, descending.
    pub fn kernels_by_time(&self) -> Vec<&KernelRow> {
        let mut rows: Vec<&KernelRow> = self.kernels.iter().collect();
        rows.sort_by(|a, b| b.nanos.total_cmp(&a.nanos));
        rows
    }

    /// Kernels sorted by cumulative bytes moved, descending.
    pub fn kernels_by_bytes(&self) -> Vec<&KernelRow> {
        let mut rows: Vec<&KernelRow> = self.kernels.iter().collect();
        rows.sort_by(|a, b| b.bytes.total_cmp(&a.bytes));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_lines(name: &str, lines: &[&str]) -> PathBuf {
        let dir = std::env::temp_dir().join("muse-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path).unwrap();
        for l in lines {
            writeln!(f, "{l}").unwrap();
        }
        path
    }

    #[test]
    fn folds_a_synthetic_run() {
        let path = write_lines(
            "ingest_run.jsonl",
            &[
                r#"{"ev":"run.manifest","seq":0,"experiments":["fig4"],"threads":1}"#,
                r#"{"ev":"train.start","seq":1,"run":1,"epochs":2,"batch_size":4,"learning_rate":0.001,"train_size":12,"val_size":4}"#,
                r#"{"ev":"train.batch","seq":2,"run":1,"epoch":0,"batch":0}"#,
                r#"{"ev":"train.batch_skipped","seq":3,"run":1,"epoch":0,"batch":1,"terms":{}}"#,
                r#"{"ev":"train.epoch","seq":4,"run":1,"record":{"epoch":0,"train_loss":5.0,"train_regression":2.0,"val_rmse":0.4,"skipped_batches":1},"batches":1,"duration_ms":10.0,"samples_per_sec":400.0,"kl_exclusive":1.0,"kl_interactive":0.5,"reconstruction":2.5,"pulling":0.1}"#,
                r#"{"ev":"train.epoch","seq":5,"run":1,"record":{"epoch":1,"train_loss":3.0,"train_regression":1.0,"val_rmse":0.3,"skipped_batches":0},"batches":2,"duration_ms":9.0,"samples_per_sec":440.0,"kl_exclusive":0.9,"kl_interactive":0.4,"reconstruction":1.5,"pulling":0.1}"#,
                r#"{"ev":"train.end","seq":6,"run":1,"epochs_run":2,"best_val_rmse":0.3,"skipped_batches":1,"duration_ms":19.5}"#,
                r#"{"ev":"eval.experiment","seq":7,"experiment":"fig4","duration_s":1.25}"#,
                r#"{"ev":"bench.result","seq":8,"name":"gemm","min_ns":100.0,"mean_ns":120.0,"max_ns":150.0,"samples":10}"#,
                r#"{"ev":"span.exit","seq":9,"path":"train.fit","tid":1,"t_ns":500,"dur_ns":400}"#,
                r#"{"ev":"kernel.summary","seq":10,"metrics":{"counters":{"parallel.jobs_submitted":8},"gauges":{"parallel.pool_size":1},"kernels":{"tensor.matmul":{"calls":4,"nanos":2000,"bytes":800}}}}"#,
            ],
        );
        let data = TraceData::load(&path).unwrap();
        assert!(data.manifest.is_some());
        assert_eq!(data.runs.len(), 1);
        let run = &data.runs[0];
        assert_eq!(run.run, 1);
        assert_eq!(run.epochs_planned, 2);
        assert_eq!(run.epochs.len(), 2);
        assert_eq!(run.batches, 1);
        assert_eq!(run.skipped_batches, 1);
        assert_eq!(run.first_loss(), Some(5.0));
        assert_eq!(run.last_loss(), Some(3.0));
        assert_eq!(run.best_val_rmse, Some(0.3));
        assert_eq!(run.epochs[0].val_rmse, Some(0.4));
        assert_eq!(run.epochs[1].kl_exclusive, 0.9);
        assert_eq!(data.experiments, vec![("fig4".to_string(), 1.25)]);
        assert_eq!(data.benches.len(), 1);
        assert_eq!(data.benches[0].min_ns, 100.0);
        assert_eq!(data.kernels.len(), 1);
        assert_eq!(data.kernels[0].nanos_per_call(), 500.0);
        assert_eq!(data.kernels[0].bytes_per_call(), 200.0);
        assert_eq!(data.counters.get("parallel.jobs_submitted"), Some(&8.0));
        assert_eq!(data.span_exits.len(), 1);
        assert_eq!(data.span_exits[0].dur_ns, 400);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_final_line_is_tolerated() {
        let path = write_lines(
            "ingest_truncated.jsonl",
            &[
                r#"{"ev":"train.start","seq":0,"run":3,"epochs":1,"batch_size":2,"learning_rate":0.01,"train_size":4,"val_size":0}"#,
                r#"{"ev":"train.epoch","seq":1,"run":3,"record":{"epoch":0,"train_loss":1.0,"train_regression":0.5,"val_rmse":null,"skipped_batches":0},"batches":2,"duration_ms":5.0,"samples_per_sec":800.0}"#,
                r#"{"ev":"train.end","seq":2,"run":3,"best_val"#, // torn mid-emit
            ],
        );
        let data = TraceData::load(&path).unwrap();
        assert_eq!(data.runs.len(), 1);
        assert_eq!(data.runs[0].epochs.len(), 1);
        // The torn train.end never folded: totals stay None.
        assert_eq!(data.runs[0].duration_ms, None);
        assert_eq!(data.runs[0].epochs[0].val_rmse, None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn folds_serve_quality_events() {
        let path = write_lines(
            "ingest_quality.jsonl",
            &[
                r#"{"ev":"req.ingest","seq":0,"request":1,"index":21}"#,
                r#"{"ev":"req.coalesce","seq":1,"rollout":1,"batch_size":2,"requests":[2,3]}"#,
                r#"{"ev":"req.forecast","seq":2,"request":2,"rollout":1,"horizon":1,"target":21}"#,
                r#"{"ev":"req.forecast","seq":3,"request":3,"rollout":1,"horizon":2,"target":22}"#,
                r#"{"ev":"req.reject","seq":4,"request":4,"stage":"forecast","reason":"bad_horizon"}"#,
                r#"{"ev":"forecast.scored","seq":5,"request":2,"rollout":1,"horizon":1,"target":21,"mae":0.125,"rmse":0.25,"mae_inflow":0.1,"mae_outflow":0.15}"#,
                r#"{"ev":"forecast.dropped","seq":6,"request":3,"horizon":2,"target":22,"reason":"target_evicted"}"#,
                r#"{"ev":"alert.transition","seq":7,"alert":"flow_level_shift","metric":"serve.flow.mean","from":"ok","to":"firing","value":1.5}"#,
                r#"{"ev":"spectral.sweep","seq":8,"sweep":1,"index":64,"periods":[{"intervals":24,"power_share":0.8,"snr":30.0},{"intervals":168,"power_share":0.1,"snr":9.0}]}"#,
                r#"{"ev":"spectral.sweep","seq":9,"sweep":2,"index":96,"periods":[]}"#,
            ],
        );
        let data = TraceData::load(&path).unwrap();
        assert_eq!(data.quality_samples.len(), 1);
        let s = &data.quality_samples[0];
        assert_eq!((s.request, s.rollout, s.horizon, s.target), (2, 1, 1, 21));
        assert_eq!((s.mae, s.rmse), (0.125, 0.25));
        assert_eq!(data.dropped_forecasts.len(), 1);
        assert_eq!(data.dropped_forecasts[0].reason, "target_evicted");
        assert_eq!(data.alert_events.len(), 1);
        assert_eq!(data.alert_events[0].alert, "flow_level_shift");
        assert_eq!(data.alert_events[0].to, "firing");
        assert_eq!(data.request_events.len(), 4);
        assert_eq!(data.request_events[0].kind, "ingest");
        assert_eq!(data.request_events[0].index, Some(21));
        assert_eq!(data.request_events[1].kind, "forecast");
        assert_eq!(data.request_events[1].rollout, Some(1));
        assert_eq!(data.request_events[3].kind, "reject");
        assert_eq!(data.request_events[3].reason.as_deref(), Some("bad_horizon"));
        assert_eq!(data.coalesces.len(), 1);
        assert_eq!(data.coalesces[0].requests, vec![2, 3]);
        assert_eq!(data.spectral_sweeps.len(), 2);
        assert_eq!(data.spectral_sweeps[0].sweep, 1);
        assert_eq!(data.spectral_sweeps[0].index, 64);
        assert_eq!(
            data.spectral_sweeps[0].dominant(),
            Some(&SweepPeriod { intervals: 24, power_share: 0.8, snr: 30.0 })
        );
        assert_eq!(data.spectral_sweeps[0].periods.len(), 2);
        assert!(data.spectral_sweeps[1].dominant().is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn later_kernel_summary_supersedes_earlier() {
        let path = write_lines(
            "ingest_summary.jsonl",
            &[
                r#"{"ev":"kernel.summary","seq":0,"metrics":{"kernels":{"a":{"calls":1,"nanos":10,"bytes":1}}}}"#,
                r#"{"ev":"kernel.summary","seq":1,"metrics":{"kernels":{"b":{"calls":2,"nanos":20,"bytes":2},"c":{"calls":3,"nanos":5,"bytes":9}}}}"#,
            ],
        );
        let data = TraceData::load(&path).unwrap();
        assert_eq!(data.kernels.len(), 2);
        let by_time = data.kernels_by_time();
        assert_eq!(by_time[0].name, "b");
        let by_bytes = data.kernels_by_bytes();
        assert_eq!(by_bytes[0].name, "c");
        let _ = std::fs::remove_file(&path);
    }
}
