#![warn(missing_docs)]

//! # muse-trace
//!
//! Analysis layer over `muse-obs` JSONL traces: parse a trace back into
//! typed run records, summarize and compare runs, and fold span
//! enter/exit events into collapsed-stack flame profiles.
//!
//! Like the rest of the workspace this crate is `std`-only. It is both a
//! library (used by the perf gate for the shared tolerance band, and by
//! tests) and the `muse-trace` CLI:
//!
//! ```text
//! muse-trace report <trace.jsonl>             per-run summary
//! muse-trace diff   <base.jsonl> <new.jsonl>  side-by-side with regression
//!                                             highlighting (shared perf-gate
//!                                             tolerance band)
//! muse-trace flame  <trace.jsonl>             collapsed stacks (self time),
//!                                             flamegraph.pl-compatible
//! muse-trace promcheck <file|->               validate Prometheus text
//!                                             exposition (CI smoke)
//! muse-trace quality <trace.jsonl>            serve-path quality story:
//!                                             error trajectory, alert
//!                                             chronology, request lifecycles
//! muse-trace spectrum <trace.jsonl>           period-drift story: dominant-
//!                                             period trajectory across
//!                                             spectral sweeps + alert moves
//! muse-trace prof <profile.folded>            sampled-profile report: top-N
//!                                             self/total tables, flame
//!                                             re-emission, share diffs
//! ```

pub mod diff;
pub mod flame;
pub mod ingest;
pub mod prof;
pub mod prometheus;
pub mod quality;
pub mod report;
pub mod spectrum;
pub mod tolerance;

pub use ingest::{
    AlertEvent, BenchResult, CoalesceEvent, DroppedForecast, EpochRow, KernelRow, QualitySample,
    RequestEvent, SpanExit, SpectralSweep, SweepPeriod, TraceData, TrainRun,
};
