//! Fold span exit events into collapsed-stack flame profiles.
//!
//! Each `span.exit` event carries its full slash-joined path and duration,
//! so folding is pure aggregation: total time per path, self time = total
//! minus the totals of *direct* children. The collapsed output
//! (`a;b;c <self_ns>` per line) is the format `flamegraph.pl` and
//! speedscope consume directly.

use crate::ingest::SpanExit;
use std::collections::BTreeMap;

/// Aggregated times for one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldedSpan {
    /// Slash-joined path (`train.fit/train.forward/model.encode`).
    pub path: String,
    /// Times this span path was closed.
    pub count: u64,
    /// Cumulative nanoseconds, including children.
    pub total_ns: u64,
    /// Cumulative nanoseconds minus direct children's totals (clamped at
    /// zero — clock jitter can make children appear to outlast parents by
    /// nanoseconds).
    pub self_ns: u64,
}

/// Aggregate span exits into per-path totals with self time, sorted by
/// path for determinism.
pub fn fold(exits: &[SpanExit]) -> Vec<FoldedSpan> {
    let mut totals: BTreeMap<&str, (u64, u64)> = BTreeMap::new(); // path → (count, total)
    for e in exits {
        let slot = totals.entry(e.path.as_str()).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += e.dur_ns;
    }
    totals
        .iter()
        .map(|(path, &(count, total_ns))| {
            let children_ns: u64 = totals
                .range::<str, _>((std::ops::Bound::Excluded(*path), std::ops::Bound::Unbounded))
                .take_while(|(p, _)| p.starts_with(*path))
                .filter(|(p, _)| is_direct_child(path, p))
                .map(|(_, &(_, t))| t)
                .sum();
            FoldedSpan {
                path: path.to_string(),
                count,
                total_ns,
                self_ns: total_ns.saturating_sub(children_ns),
            }
        })
        .collect()
}

/// Is `candidate` exactly one segment below `parent`?
fn is_direct_child(parent: &str, candidate: &str) -> bool {
    candidate
        .strip_prefix(parent)
        .and_then(|rest| rest.strip_prefix('/'))
        .is_some_and(|tail| !tail.is_empty() && !tail.contains('/'))
}

/// Render folded spans as collapsed stacks: one `seg;seg;seg self_ns` line
/// per path with non-zero self time, sorted by path.
pub fn collapsed(folded: &[FoldedSpan]) -> String {
    let mut out = String::new();
    for span in folded {
        if span.self_ns == 0 {
            continue;
        }
        out.push_str(&span.path.replace('/', ";"));
        out.push(' ');
        out.push_str(&span.self_ns.to_string());
        out.push('\n');
    }
    out
}

/// Folded spans ranked by self time, descending (path as tie-break).
pub fn by_self_time(folded: &[FoldedSpan]) -> Vec<&FoldedSpan> {
    let mut rows: Vec<&FoldedSpan> = folded.iter().collect();
    rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exit(path: &str, dur_ns: u64) -> SpanExit {
        SpanExit { path: path.to_string(), tid: 1, t_ns: 0, dur_ns }
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let exits = vec![
            exit("a", 1000),
            exit("a/b", 600),
            exit("a/b/c", 100),
            exit("a/d", 150),
            // Not a child of "a": shares the prefix string but not the path.
            exit("ax", 42),
        ];
        let folded = fold(&exits);
        let get = |p: &str| folded.iter().find(|f| f.path == p).unwrap();
        assert_eq!(get("a").total_ns, 1000);
        // a's direct children are a/b and a/d — NOT a/b/c, not ax.
        assert_eq!(get("a").self_ns, 1000 - 600 - 150);
        assert_eq!(get("a/b").self_ns, 500);
        assert_eq!(get("a/b/c").self_ns, 100);
        assert_eq!(get("ax").self_ns, 42);
    }

    #[test]
    fn repeated_paths_accumulate() {
        let exits = vec![exit("x", 10), exit("x", 30), exit("x/y", 5)];
        let folded = fold(&exits);
        let x = folded.iter().find(|f| f.path == "x").unwrap();
        assert_eq!(x.count, 2);
        assert_eq!(x.total_ns, 40);
        assert_eq!(x.self_ns, 35);
    }

    #[test]
    fn child_outlasting_parent_clamps_to_zero() {
        let exits = vec![exit("p", 100), exit("p/q", 120)];
        let folded = fold(&exits);
        assert_eq!(folded.iter().find(|f| f.path == "p").unwrap().self_ns, 0);
    }

    #[test]
    fn collapsed_format_is_semicolon_separated() {
        let exits = vec![exit("a", 100), exit("a/b", 100)];
        let text = collapsed(&fold(&exits));
        // "a" has zero self time and is omitted; a/b keeps its 100.
        assert_eq!(text, "a;b 100\n");
    }

    #[test]
    fn ranking_is_by_self_time() {
        let exits = vec![exit("slow", 900), exit("fast", 10), exit("mid", 50)];
        let folded = fold(&exits);
        let ranked = by_self_time(&folded);
        assert_eq!(ranked[0].path, "slow");
        assert_eq!(ranked[2].path, "fast");
    }
}
