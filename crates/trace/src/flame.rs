//! Fold span exit events into collapsed-stack flame profiles.
//!
//! Each `span.exit` event carries its full slash-joined path and duration,
//! so folding is pure aggregation: total time per path, self time = total
//! minus the totals of *direct* children. The collapsed output
//! (`a;b;c <self_ns>` per line) is the format `flamegraph.pl` and
//! speedscope consume directly.

use crate::ingest::SpanExit;
use std::collections::BTreeMap;

/// Aggregated times for one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldedSpan {
    /// Slash-joined path (`train.fit/train.forward/model.encode`).
    pub path: String,
    /// Times this span path was closed.
    pub count: u64,
    /// Cumulative nanoseconds, including children.
    pub total_ns: u64,
    /// Cumulative nanoseconds minus direct children's totals (clamped at
    /// zero — clock jitter can make children appear to outlast parents by
    /// nanoseconds).
    pub self_ns: u64,
}

/// Aggregate span exits into per-path totals with self time, sorted by
/// path for determinism.
pub fn fold(exits: &[SpanExit]) -> Vec<FoldedSpan> {
    let mut totals: BTreeMap<&str, (u64, u64)> = BTreeMap::new(); // path → (count, total)
    for e in exits {
        let slot = totals.entry(e.path.as_str()).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += e.dur_ns;
    }
    totals
        .iter()
        .map(|(path, &(count, total_ns))| {
            let children_ns: u64 = totals
                .range::<str, _>((std::ops::Bound::Excluded(*path), std::ops::Bound::Unbounded))
                .take_while(|(p, _)| p.starts_with(*path))
                .filter(|(p, _)| is_direct_child(path, p))
                .map(|(_, &(_, t))| t)
                .sum();
            FoldedSpan {
                path: path.to_string(),
                count,
                total_ns,
                self_ns: total_ns.saturating_sub(children_ns),
            }
        })
        .collect()
}

/// Is `candidate` exactly one segment below `parent`?
fn is_direct_child(parent: &str, candidate: &str) -> bool {
    candidate
        .strip_prefix(parent)
        .and_then(|rest| rest.strip_prefix('/'))
        .is_some_and(|tail| !tail.is_empty() && !tail.contains('/'))
}

/// Render folded spans as collapsed stacks: one `seg;seg;seg self_ns` line
/// per path with non-zero self time, in deterministic flame order — a
/// depth-first tree walk with siblings sorted hottest (self time) first,
/// name as tie-break — so flame outputs of the same trace are stable and
/// profile diffs line up row for row.
pub fn collapsed(folded: &[FoldedSpan]) -> String {
    let rows: Vec<(&str, u64)> = folded.iter().map(|f| (f.path.as_str(), f.self_ns)).collect();
    let mut out = String::new();
    for idx in tree_order_indices(&rows, '/') {
        let span = &folded[idx];
        if span.self_ns == 0 {
            continue;
        }
        out.push_str(&span.path.replace('/', ";"));
        out.push(' ');
        out.push_str(&span.self_ns.to_string());
        out.push('\n');
    }
    out
}

/// Deterministic flame ordering over `(path, self_weight)` rows: indices in
/// depth-first tree order, siblings sorted by self weight descending then
/// path. Rows whose parent path is absent are treated as roots. Shared by
/// the span-event flame ('/'-separated paths) and `muse-trace prof`
/// (';'-separated folded stacks).
pub fn tree_order_indices(rows: &[(&str, u64)], sep: char) -> Vec<usize> {
    let by_path: BTreeMap<&str, usize> = rows.iter().enumerate().map(|(i, r)| (r.0, i)).collect();
    // parent index (or None for roots) → children indices.
    let mut children: BTreeMap<Option<usize>, Vec<usize>> = BTreeMap::new();
    for (i, (path, _)) in rows.iter().enumerate() {
        let parent = path.rfind(sep).and_then(|cut| by_path.get(&path[..cut]).copied());
        children.entry(parent).or_default().push(i);
    }
    for siblings in children.values_mut() {
        siblings.sort_by(|&a, &b| rows[b].1.cmp(&rows[a].1).then_with(|| rows[a].0.cmp(rows[b].0)));
    }
    let mut order = Vec::with_capacity(rows.len());
    let mut stack: Vec<usize> = children.get(&None).cloned().unwrap_or_default();
    stack.reverse();
    while let Some(idx) = stack.pop() {
        order.push(idx);
        if let Some(kids) = children.get(&Some(idx)) {
            stack.extend(kids.iter().rev());
        }
    }
    order
}

/// Folded spans ranked by self time, descending (path as tie-break).
pub fn by_self_time(folded: &[FoldedSpan]) -> Vec<&FoldedSpan> {
    let mut rows: Vec<&FoldedSpan> = folded.iter().collect();
    rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exit(path: &str, dur_ns: u64) -> SpanExit {
        SpanExit { path: path.to_string(), tid: 1, t_ns: 0, dur_ns }
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let exits = vec![
            exit("a", 1000),
            exit("a/b", 600),
            exit("a/b/c", 100),
            exit("a/d", 150),
            // Not a child of "a": shares the prefix string but not the path.
            exit("ax", 42),
        ];
        let folded = fold(&exits);
        let get = |p: &str| folded.iter().find(|f| f.path == p).unwrap();
        assert_eq!(get("a").total_ns, 1000);
        // a's direct children are a/b and a/d — NOT a/b/c, not ax.
        assert_eq!(get("a").self_ns, 1000 - 600 - 150);
        assert_eq!(get("a/b").self_ns, 500);
        assert_eq!(get("a/b/c").self_ns, 100);
        assert_eq!(get("ax").self_ns, 42);
    }

    #[test]
    fn repeated_paths_accumulate() {
        let exits = vec![exit("x", 10), exit("x", 30), exit("x/y", 5)];
        let folded = fold(&exits);
        let x = folded.iter().find(|f| f.path == "x").unwrap();
        assert_eq!(x.count, 2);
        assert_eq!(x.total_ns, 40);
        assert_eq!(x.self_ns, 35);
    }

    #[test]
    fn child_outlasting_parent_clamps_to_zero() {
        let exits = vec![exit("p", 100), exit("p/q", 120)];
        let folded = fold(&exits);
        assert_eq!(folded.iter().find(|f| f.path == "p").unwrap().self_ns, 0);
    }

    #[test]
    fn collapsed_format_is_semicolon_separated() {
        let exits = vec![exit("a", 100), exit("a/b", 100)];
        let text = collapsed(&fold(&exits));
        // "a" has zero self time and is omitted; a/b keeps its 100.
        assert_eq!(text, "a;b 100\n");
    }

    #[test]
    fn collapsed_orders_siblings_by_self_time_then_name() {
        let exits = vec![
            exit("root", 1000),
            exit("root/cold", 50),
            exit("root/hot", 500),
            exit("root/hot/leaf", 200),
            exit("root/warm", 250),
            // Two zero-padded siblings tie on self time → name order.
            exit("root/bbb", 10),
            exit("root/aaa", 10),
        ];
        let text = collapsed(&fold(&exits));
        let paths: Vec<&str> = text.lines().map(|l| l.rsplit_once(' ').unwrap().0).collect();
        // Depth-first: hot subtree (self 300) first, its child inside it,
        // then warm (250), cold (50), then the 10/10 tie in name order.
        // root itself has self 1000-820=180... listed first as the root.
        assert_eq!(
            paths,
            vec!["root", "root;hot", "root;hot;leaf", "root;warm", "root;cold", "root;aaa", "root;bbb"],
            "text:\n{text}"
        );
    }

    #[test]
    fn ranking_is_by_self_time() {
        let exits = vec![exit("slow", 900), exit("fast", 10), exit("mid", 50)];
        let folded = fold(&exits);
        let ranked = by_self_time(&folded);
        assert_eq!(ranked[0].path, "slow");
        assert_eq!(ranked[2].path, "fast");
    }
}
