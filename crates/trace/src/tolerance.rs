//! The tolerance band shared by the perf gate and `muse-trace diff`.
//!
//! Both tools answer the same question — "is the current number worse than
//! the baseline by more than we allow?" — and they must answer it the same
//! way, or a trace that passes the gate could be flagged by `diff` (or
//! vice versa). The two comparison modes:
//!
//! * [`exceeds`] — one-sided: only a *slowdown* beyond the band fails.
//!   Used for timings, where faster is always fine.
//! * [`drifted`] — two-sided: any relative change beyond the band fails.
//!   Used for bytes-per-call, where movement in either direction means the
//!   kernel's data movement genuinely changed.

/// Default relative tolerance: a value may be up to this much worse than
/// baseline before a comparison fails. Generous because CI machines are
/// noisy; tighten via CLI argument or `MUSE_PERF_TOL`.
pub const DEFAULT_TOLERANCE: f64 = 0.75;

/// Resolve an explicitly requested tolerance: CLI argument first, then the
/// `MUSE_PERF_TOL` environment variable. Returns `None` when neither is
/// set (callers then fall back to a baseline-recorded value or
/// [`DEFAULT_TOLERANCE`]). Invalid or non-positive values are rejected
/// with a warning.
pub fn resolve(cli: Option<&str>) -> Option<f64> {
    let from_env = std::env::var("MUSE_PERF_TOL").ok();
    let raw = cli.or(from_env.as_deref())?;
    match raw.parse::<f64>() {
        Ok(t) if t > 0.0 => Some(t),
        _ => {
            eprintln!("ignoring invalid tolerance {raw:?}");
            None
        }
    }
}

/// Signed relative change of `current` vs `baseline` (`+0.10` = 10%
/// worse-or-larger). Baselines at or below zero yield 0 — there is nothing
/// meaningful to compare against.
pub fn rel_change(baseline: f64, current: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        current / baseline - 1.0
    }
}

/// One-sided check: does `current` exceed `baseline` by more than
/// `tolerance` (i.e. `current / baseline > 1 + tolerance`)? Improvements
/// never fail.
pub fn exceeds(baseline: f64, current: f64, tolerance: f64) -> bool {
    rel_change(baseline, current) > tolerance
}

/// Absolute relative drift of `current` vs `baseline`, with the
/// denominator clamped to at least 1.0 so near-zero baselines do not
/// amplify noise.
pub fn drift(baseline: f64, current: f64) -> f64 {
    (current - baseline).abs() / baseline.max(1.0)
}

/// Two-sided check: has `current` drifted from `baseline` (in either
/// direction) by more than `tolerance`?
pub fn drifted(baseline: f64, current: f64, tolerance: f64) -> bool {
    drift(baseline, current) > tolerance
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exceeds_is_one_sided() {
        assert!(exceeds(100.0, 200.0, 0.75));
        assert!(!exceeds(100.0, 174.0, 0.75));
        // Improvements never fail, no matter how large.
        assert!(!exceeds(100.0, 1.0, 0.75));
        // Degenerate baselines compare as unchanged.
        assert!(!exceeds(0.0, 1e9, 0.75));
    }

    #[test]
    fn drifted_is_two_sided() {
        assert!(drifted(1000.0, 100.0, 0.75));
        assert!(drifted(1000.0, 2000.0, 0.75));
        assert!(!drifted(1000.0, 1200.0, 0.75));
        // Denominator clamp: tiny baselines don't explode the ratio.
        assert!(!drifted(0.1, 0.5, 0.75));
    }

    #[test]
    fn resolve_prefers_cli_and_rejects_junk() {
        assert_eq!(resolve(Some("0.5")), Some(0.5));
        assert_eq!(resolve(Some("-1")), None);
        assert_eq!(resolve(Some("abc")), None);
    }
}
